"""Boolean factors, sargability, and index matching (Sections 3-4).

The WHERE tree is considered in conjunctive normal form; every conjunct is a
*boolean factor* that every result tuple must satisfy.  A factor is
*sargable* when it can be put into the form ``column comparison-operator
value`` (or a DNF of such), in which case the RSS can filter tuples below
the RSI.  An index *matches* a factor when the factor's columns are an
initial substring of the index key, which lets an index scan bound its key
range instead of reading the whole relation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..catalog.schema import IndexDef
from ..rss.sargs import CompareOp
from ..sql import ast
from .bound import BoundColumn, BoundQueryBlock, BoundSubquery

# Distributing OR over AND is exponential; past this many conjuncts we keep
# the expression as a single opaque (residual) factor instead.
_CNF_LIMIT = 64


# ---------------------------------------------------------------------------
# sargable forms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimpleSarg:
    """``column op value`` where value is evaluable without this relation.

    ``value`` may be a Literal, an uncorrelated scalar subquery, an outer
    block's column (correlation), or — when a join predicate is turned into
    a probe on the inner relation — a column of an already-joined relation.
    """

    column: BoundColumn
    op: CompareOp
    value: ast.Expr

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} {self.value}"


@dataclass(frozen=True)
class SargExpression:
    """DNF of simple sargable predicates: OR of AND-groups."""

    groups: tuple[tuple[SimpleSarg, ...], ...]

    def __str__(self) -> str:
        rendered = [
            " AND ".join(str(pred) for pred in group) for group in self.groups
        ]
        return " OR ".join(f"({clause})" for clause in rendered)


@dataclass
class BooleanFactor:
    """One conjunct of the CNF WHERE tree, with its analysis attached."""

    expr: ast.Expr
    aliases: frozenset[str]
    sarg: SargExpression | None = None
    join: "JoinPredicate | None" = None
    selectivity: float = 1.0

    @property
    def is_local(self) -> bool:
        """True when at most one relation is referenced."""
        return len(self.aliases) <= 1

    @property
    def is_join_predicate(self) -> bool:
        """True for simple column-op-column factors across relations."""
        return self.join is not None

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class JoinPredicate:
    """A factor of the form ``T1.c1 op T2.c2`` relating two relations."""

    left: BoundColumn
    right: BoundColumn
    op: CompareOp

    @property
    def is_equijoin(self) -> bool:
        """True when the join operator is equality."""
        return self.op is CompareOp.EQ

    def column_for(self, alias: str) -> BoundColumn:
        """The side of the predicate belonging to ``alias``."""
        if self.left.alias == alias:
            return self.left
        if self.right.alias == alias:
            return self.right
        raise KeyError(alias)

    def other_column(self, alias: str) -> BoundColumn:
        """The side of the predicate NOT belonging to ``alias``."""
        if self.left.alias == alias:
            return self.right
        if self.right.alias == alias:
            return self.left
        raise KeyError(alias)


# ---------------------------------------------------------------------------
# CNF conversion
# ---------------------------------------------------------------------------


def to_cnf_factors(expr: ast.Expr | None, block: BoundQueryBlock) -> list[BooleanFactor]:
    """Convert a bound WHERE tree into analyzed boolean factors."""
    if expr is None:
        return []
    pushed = _push_not(expr, negate=False)
    conjuncts = _conjuncts(pushed)
    factors = [_analyze_factor(conjunct, block) for conjunct in conjuncts]
    return factors


def _push_not(expr: ast.Expr, negate: bool) -> ast.Expr:
    """Push NOT down to atoms (De Morgan), negating comparisons in place."""
    if isinstance(expr, ast.Not):
        return _push_not(expr.operand, not negate)
    if isinstance(expr, ast.And):
        operands = tuple(_push_not(op, negate) for op in expr.operands)
        return ast.Or(operands) if negate else ast.And(operands)
    if isinstance(expr, ast.Or):
        operands = tuple(_push_not(op, negate) for op in expr.operands)
        return ast.And(operands) if negate else ast.Or(operands)
    if not negate:
        return expr
    if isinstance(expr, ast.Comparison):
        return ast.Comparison(expr.op.negated(), expr.left, expr.right)
    if isinstance(expr, ast.Between):
        # NOT (x BETWEEN a AND b)  ==  x < a OR x > b
        return ast.Or(
            (
                ast.Comparison(CompareOp.LT, expr.operand, expr.low),
                ast.Comparison(CompareOp.GT, expr.operand, expr.high),
            )
        )
    if isinstance(expr, ast.InList):
        conjuncts = tuple(
            ast.Comparison(CompareOp.NE, expr.operand, value)
            for value in expr.values
        )
        return conjuncts[0] if len(conjuncts) == 1 else ast.And(conjuncts)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(expr.operand, not expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(expr.operand, expr.pattern, not expr.negated)
    return ast.Not(expr)


def _conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    """Flatten to CNF conjuncts, distributing OR over AND with a size cap."""
    if isinstance(expr, ast.And):
        result: list[ast.Expr] = []
        for operand in expr.operands:
            result.extend(_conjuncts(operand))
        return result
    if isinstance(expr, ast.Or):
        # CNF of each disjunct, then cross-product of their conjunct sets.
        per_disjunct = [_conjuncts(operand) for operand in expr.operands]
        total = 1
        for conjuncts in per_disjunct:
            total *= len(conjuncts)
            if total > _CNF_LIMIT:
                return [expr]  # too big: keep as one opaque factor
        result = []
        for combo in itertools.product(*per_disjunct):
            flattened: list[ast.Expr] = []
            for part in combo:
                if isinstance(part, ast.Or):
                    flattened.extend(part.operands)
                else:
                    flattened.append(part)
            result.append(
                flattened[0] if len(flattened) == 1 else ast.Or(tuple(flattened))
            )
        return result
    return [expr]


# ---------------------------------------------------------------------------
# factor analysis
# ---------------------------------------------------------------------------


def _analyze_factor(expr: ast.Expr, block: BoundQueryBlock) -> BooleanFactor:
    aliases = frozenset(local_aliases(expr, block.block_id))
    factor = BooleanFactor(expr=expr, aliases=aliases)
    if len(aliases) == 2 and isinstance(expr, ast.Comparison):
        join = _as_join_predicate(expr, block.block_id)
        if join is not None:
            factor.join = join
    if len(aliases) == 1:
        factor.sarg = _as_sarg_expression(expr, next(iter(aliases)), block.block_id)
    return factor


def local_aliases(expr: ast.Expr, block_id: int) -> set[str]:
    """Aliases of *this* block referenced anywhere in the expression."""
    found: set[str] = set()
    for node in ast.walk_expr(expr):
        if isinstance(node, BoundColumn) and node.block_id == block_id:
            found.add(node.alias)
    return found


def _as_join_predicate(expr: ast.Comparison, block_id: int) -> JoinPredicate | None:
    left, right = expr.left, expr.right
    if (
        isinstance(left, BoundColumn)
        and isinstance(right, BoundColumn)
        and left.block_id == block_id
        and right.block_id == block_id
        and left.alias != right.alias
    ):
        return JoinPredicate(left, right, expr.op)
    return None


def _as_sarg_expression(
    expr: ast.Expr, alias: str, block_id: int
) -> SargExpression | None:
    """The DNF sargable form of a single-relation factor, if one exists."""
    groups = _sarg_groups(expr, alias, block_id)
    if groups is None:
        return None
    return SargExpression(tuple(tuple(group) for group in groups))


def _sarg_groups(
    expr: ast.Expr, alias: str, block_id: int
) -> list[list[SimpleSarg]] | None:
    if isinstance(expr, ast.Or):
        groups: list[list[SimpleSarg]] = []
        for operand in expr.operands:
            sub = _sarg_groups(operand, alias, block_id)
            if sub is None:
                return None
            groups.extend(sub)
        return groups
    if isinstance(expr, ast.And):
        # Inside a conjunct this only occurs beneath an OR kept opaque;
        # AND of sargables is a single group (cross product of operands).
        combined: list[list[SimpleSarg]] = [[]]
        for operand in expr.operands:
            sub = _sarg_groups(operand, alias, block_id)
            if sub is None:
                return None
            combined = [
                existing + list(addition)
                for existing in combined
                for addition in sub
            ]
            if len(combined) > _CNF_LIMIT:
                return None
        return combined
    if isinstance(expr, ast.Comparison):
        simple = _as_simple_sarg(expr, alias, block_id)
        return [[simple]] if simple is not None else None
    if isinstance(expr, ast.Between):
        if not _is_local_column(expr.operand, alias, block_id):
            return None
        if not _is_constant_for(expr.low, alias, block_id) or not _is_constant_for(
            expr.high, alias, block_id
        ):
            return None
        column = expr.operand
        assert isinstance(column, BoundColumn)
        return [
            [
                SimpleSarg(column, CompareOp.GE, expr.low),
                SimpleSarg(column, CompareOp.LE, expr.high),
            ]
        ]
    if isinstance(expr, ast.InList):
        if not _is_local_column(expr.operand, alias, block_id):
            return None
        column = expr.operand
        assert isinstance(column, BoundColumn)
        return [
            [SimpleSarg(column, CompareOp.EQ, value)] for value in expr.values
        ]
    return None


def _as_simple_sarg(
    expr: ast.Comparison, alias: str, block_id: int
) -> SimpleSarg | None:
    left, right = expr.left, expr.right
    if _is_local_column(left, alias, block_id) and _is_constant_for(
        right, alias, block_id
    ):
        assert isinstance(left, BoundColumn)
        return SimpleSarg(left, expr.op, right)
    if _is_local_column(right, alias, block_id) and _is_constant_for(
        left, alias, block_id
    ):
        assert isinstance(right, BoundColumn)
        return SimpleSarg(right, expr.op.flipped(), left)
    return None


def _is_local_column(expr: ast.Expr, alias: str, block_id: int) -> bool:
    return (
        isinstance(expr, BoundColumn)
        and expr.alias == alias
        and expr.block_id == block_id
    )


def _is_constant_for(expr: ast.Expr, alias: str, block_id: int) -> bool:
    """True when ``expr`` can be evaluated without tuples of ``alias``.

    Literals always qualify; outer-block columns are bound by the time the
    scan opens; uncorrelated scalar subqueries are evaluated first
    (Section 6).  Any reference to a same-block alias disqualifies — those
    become join predicates or residual filters instead.
    """
    if isinstance(expr, BoundSubquery):
        return expr.scalar and not expr.block.is_correlated
    for node in ast.walk_expr(expr):
        if isinstance(node, BoundColumn) and node.block_id == block_id:
            return False
        if isinstance(node, BoundSubquery):
            if not node.scalar or node.block.is_correlated:
                return False
    return True


# ---------------------------------------------------------------------------
# factor partitioning (shared by the DP search and the baseline planners)
# ---------------------------------------------------------------------------


@dataclass
class FactorPartition:
    """Boolean factors grouped by the role they play in planning."""

    constant: list[BooleanFactor] = field(default_factory=list)
    local: dict[str, list[BooleanFactor]] = field(default_factory=dict)
    joins: list[BooleanFactor] = field(default_factory=list)
    multi: list[BooleanFactor] = field(default_factory=list)


def partition_factors(
    factors: list[BooleanFactor], aliases: list[str]
) -> FactorPartition:
    """Split factors into constant / single-relation / join / multi-relation."""
    partition = FactorPartition(local={alias: [] for alias in aliases})
    for factor in factors:
        if not factor.aliases:
            partition.constant.append(factor)
        elif len(factor.aliases) == 1:
            partition.local[next(iter(factor.aliases))].append(factor)
        elif factor.join is not None:
            partition.joins.append(factor)
        else:
            partition.multi.append(factor)
    return partition


# ---------------------------------------------------------------------------
# join predicates as probe sargs, and index matching
# ---------------------------------------------------------------------------


def join_factor_as_sarg(factor: BooleanFactor, inner_alias: str) -> SimpleSarg | None:
    """Turn a join predicate into a probe SARG on the inner relation.

    During a nested-loop join the outer tuple's value is known, so
    ``INNER.c = OUTER.c`` behaves exactly like ``INNER.c = value``.
    """
    if factor.join is None:
        return None
    join = factor.join
    if join.left.alias == inner_alias:
        return SimpleSarg(join.left, join.op, join.right)
    if join.right.alias == inner_alias:
        return SimpleSarg(join.right, join.op.flipped(), join.left)
    return None


@dataclass
class IndexMatch:
    """The result of matching sargable factors against one index.

    ``equal_prefix`` holds one equality SARG per leading index column;
    ``range_sargs`` hold inequality SARGs on the column right after the
    prefix.  Matched factors bound the key range; everything else stays a
    plain SARG or residual.
    """

    index: IndexDef
    equal_prefix: list[SimpleSarg] = field(default_factory=list)
    range_sargs: list[SimpleSarg] = field(default_factory=list)
    matched_factors: list[BooleanFactor] = field(default_factory=list)

    @property
    def matches_anything(self) -> bool:
        """True when any factor bound the index key range."""
        return bool(self.equal_prefix) or bool(self.range_sargs)

    @property
    def is_unique_equal(self) -> bool:
        """A unique index fully bound by equality predicates: at most 1 row."""
        return self.index.unique and len(self.equal_prefix) == len(
            self.index.column_names
        )


def match_index(
    index: IndexDef, factors: list[BooleanFactor], alias: str
) -> IndexMatch:
    """Match boolean factors against an index (initial-substring rule).

    Only factors whose sargable form is a single AND-group over one column
    can bound the B-tree scan: equality groups extend the prefix, and at
    most one column of range predicates closes it.
    """
    match = IndexMatch(index)
    remaining = list(factors)
    for column_name in index.column_names:
        equal = _find_single_column_factor(
            remaining, alias, column_name, equality=True
        )
        if equal is not None:
            factor, sarg = equal
            match.equal_prefix.append(sarg)
            match.matched_factors.append(factor)
            remaining.remove(factor)
            continue
        ranged = _find_single_column_factor(
            remaining, alias, column_name, equality=False
        )
        if ranged is not None:
            factor, __ = ranged
            group = factor.sarg.groups[0]  # type: ignore[union-attr]
            match.range_sargs.extend(group)
            match.matched_factors.append(factor)
            remaining.remove(factor)
        break  # the initial substring ends at the first non-equal column
    return match


def _find_single_column_factor(
    factors: list[BooleanFactor],
    alias: str,
    column_name: str,
    equality: bool,
) -> tuple[BooleanFactor, SimpleSarg] | None:
    range_ops = (CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE)
    for factor in factors:
        if factor.sarg is None or len(factor.sarg.groups) != 1:
            continue
        group = factor.sarg.groups[0]
        if any(
            pred.column.alias != alias or pred.column.column_name != column_name
            for pred in group
        ):
            continue
        if equality:
            if len(group) == 1 and group[0].op is CompareOp.EQ:
                return factor, group[0]
        else:
            if all(pred.op in range_ops for pred in group):
                return factor, group[0]
    return None
