"""Unit tests for segments, the buffer pool, and the storage engine facade."""

import pytest

from repro.catalog import Catalog
from repro.datatypes import INTEGER, varchar
from repro.errors import IntegrityError, StorageError, TupleTooLargeError
from repro.rss import StorageEngine
from repro.rss.buffer import BufferPool
from repro.rss.counters import CostCounters
from repro.rss.pagestore import PageStore
from repro.rss.sargs import CompareOp, SargPredicate, Sargs
from repro.rss.segment import MAX_RECORD_SIZE, Segment


# ---------------------------------------------------------------------------
# buffer pool
# ---------------------------------------------------------------------------


class TestBufferPool:
    def make(self, capacity=3):
        store = PageStore()
        counters = CostCounters()
        pool = BufferPool(store, counters, capacity)
        pages = [store.allocate_data_page() for __ in range(6)]
        return store, counters, pool, pages

    def test_miss_counts_fetch(self):
        __, counters, pool, pages = self.make()
        pool.fetch(pages[0].page_id)
        assert counters.page_fetches == 1

    def test_hit_is_free(self):
        __, counters, pool, pages = self.make()
        pool.fetch(pages[0].page_id)
        pool.fetch(pages[0].page_id)
        assert counters.page_fetches == 1
        assert counters.buffer_hits == 1

    def test_lru_eviction(self):
        __, counters, pool, pages = self.make(capacity=2)
        pool.fetch(pages[0].page_id)
        pool.fetch(pages[1].page_id)
        pool.fetch(pages[2].page_id)  # evicts page 0
        pool.fetch(pages[0].page_id)  # miss again
        assert counters.page_fetches == 4

    def test_recency_updates_on_hit(self):
        __, counters, pool, pages = self.make(capacity=2)
        pool.fetch(pages[0].page_id)
        pool.fetch(pages[1].page_id)
        pool.fetch(pages[0].page_id)  # page 0 most recent
        pool.fetch(pages[2].page_id)  # evicts page 1
        pool.fetch(pages[0].page_id)  # still resident
        assert counters.page_fetches == 3

    def test_clear(self):
        __, counters, pool, pages = self.make()
        pool.fetch(pages[0].page_id)
        pool.clear()
        pool.fetch(pages[0].page_id)
        assert counters.page_fetches == 2

    def test_capacity_validation(self):
        store = PageStore()
        with pytest.raises(ValueError):
            BufferPool(store, CostCounters(), 0)

    def test_unknown_page(self):
        __, ___, pool, ____ = self.make()
        with pytest.raises(StorageError):
            pool.fetch(999)


# ---------------------------------------------------------------------------
# segments
# ---------------------------------------------------------------------------


def make_segment():
    store = PageStore()
    counters = CostCounters()
    buffer = BufferPool(store, counters, 64)
    return Segment("S", store, buffer), counters


class TestSegment:
    def test_insert_read_roundtrip(self):
        segment, __ = make_segment()
        tid = segment.insert(b"\x00\x01payload")
        assert segment.read(tid) == b"\x00\x01payload"

    def test_insert_allocates_pages(self):
        segment, __ = make_segment()
        for __ in range(100):
            segment.insert(b"x" * 200)
        assert segment.page_count() > 1

    def test_scan_records_sees_everything(self):
        segment, __ = make_segment()
        records = [bytes([0, i]) + b"r" for i in range(50)]
        for record in records:
            segment.insert(record)
        assert [record for __, record in segment.scan_records()] == records

    def test_delete(self):
        segment, __ = make_segment()
        tid = segment.insert(b"\x00\x01x")
        segment.delete(tid)
        assert list(segment.scan_records()) == []

    def test_update_in_place_keeps_tid(self):
        segment, __ = make_segment()
        tid = segment.insert(b"\x00\x01abcd")
        new_tid = segment.update(tid, b"\x00\x01wxyz")
        assert new_tid == tid

    def test_update_growing_moves(self):
        segment, __ = make_segment()
        tid = segment.insert(b"\x00\x01ab")
        filler = [segment.insert(b"\x00\x02" + b"f" * 64) for __ in range(5)]
        new_tid = segment.update(tid, b"\x00\x01" + b"z" * 300)
        assert segment.read(new_tid).endswith(b"z" * 300)

    def test_too_large_record(self):
        segment, __ = make_segment()
        with pytest.raises(TupleTooLargeError):
            segment.insert(b"x" * (MAX_RECORD_SIZE + 1))

    def test_space_reuse_after_delete(self):
        segment, __ = make_segment()
        tids = [segment.insert(b"\x00\x01" + b"x" * 500) for __ in range(20)]
        pages_before = segment.page_count()
        for tid in tids:
            segment.delete(tid)
        for __ in range(20):
            segment.insert(b"\x00\x01" + b"y" * 500)
        assert segment.page_count() == pages_before

    def test_non_empty_pages(self):
        segment, __ = make_segment()
        assert segment.non_empty_pages() == 0
        tid = segment.insert(b"\x00\x01x")
        assert segment.non_empty_pages() == 1
        segment.delete(tid)
        assert segment.non_empty_pages() == 0


# ---------------------------------------------------------------------------
# storage engine facade
# ---------------------------------------------------------------------------


def make_engine():
    catalog = Catalog()
    table = catalog.create_table(
        "T", [("ID", INTEGER), ("NAME", varchar(16)), ("GRP", INTEGER)]
    )
    engine = StorageEngine()
    engine.ensure_segment(table.segment_name)
    return catalog, table, engine


class TestStorageEngine:
    def test_insert_and_read(self):
        catalog, table, engine = make_engine()
        tid = engine.insert(table, [], (1, "one", 10))
        assert engine.read_values(table, tid) == (1, "one", 10)

    def test_index_maintained_on_insert(self):
        catalog, table, engine = make_engine()
        index = catalog.create_index("T_GRP", "T", ["GRP"])
        engine.create_index(index, table)
        engine.insert(table, [index], (1, "a", 5))
        engine.insert(table, [index], (2, "b", 5))
        rows = list(engine.index_scan(index, table, low=(5,), high=(5,)))
        assert len(rows) == 2

    def test_unique_index_rejects_duplicates(self):
        catalog, table, engine = make_engine()
        index = catalog.create_index("T_ID", "T", ["ID"], unique=True)
        engine.create_index(index, table)
        engine.insert(table, [index], (1, "a", 5))
        with pytest.raises(IntegrityError):
            engine.insert(table, [index], (1, "b", 6))

    def test_unique_index_allows_nulls(self):
        catalog, table, engine = make_engine()
        index = catalog.create_index("T_ID", "T", ["ID"], unique=True)
        engine.create_index(index, table)
        engine.insert(table, [index], (None, "a", 1))
        engine.insert(table, [index], (None, "b", 2))  # no error

    def test_build_unique_index_over_duplicates_fails(self):
        catalog, table, engine = make_engine()
        engine.insert(table, [], (1, "a", 5))
        engine.insert(table, [], (1, "b", 6))
        index = catalog.create_index("T_ID", "T", ["ID"], unique=True)
        with pytest.raises(IntegrityError):
            engine.create_index(index, table)

    def test_update_maintains_indexes(self):
        catalog, table, engine = make_engine()
        index = catalog.create_index("T_GRP", "T", ["GRP"])
        engine.create_index(index, table)
        tid = engine.insert(table, [index], (1, "a", 5))
        engine.update(table, [index], tid, (1, "a", 5), (1, "a", 9))
        assert list(engine.index_scan(index, table, low=(5,), high=(5,))) == []
        assert len(list(engine.index_scan(index, table, low=(9,), high=(9,)))) == 1

    def test_delete_maintains_indexes(self):
        catalog, table, engine = make_engine()
        index = catalog.create_index("T_GRP", "T", ["GRP"])
        engine.create_index(index, table)
        tid = engine.insert(table, [index], (1, "a", 5))
        engine.delete(table, [index], tid, (1, "a", 5))
        assert list(engine.index_scan(index, table, low=(5,), high=(5,))) == []

    def test_segment_scan_with_sargs(self):
        catalog, table, engine = make_engine()
        for i in range(20):
            engine.insert(table, [], (i, f"n{i}", i % 4))
        sargs = Sargs.conjunction([SargPredicate(2, CompareOp.EQ, 1)])
        rows = list(engine.segment_scan(table, sargs))
        assert len(rows) == 5
        assert all(values[2] == 1 for __, values in rows)

    def test_sarg_rejections_do_not_count_rsi(self):
        catalog, table, engine = make_engine()
        for i in range(20):
            engine.insert(table, [], (i, f"n{i}", i % 4))
        engine.counters.reset()
        sargs = Sargs.conjunction([SargPredicate(2, CompareOp.EQ, 1)])
        list(engine.segment_scan(table, sargs))
        assert engine.counters.rsi_calls == 5

    def test_suppress_counting(self):
        catalog, table, engine = make_engine()
        engine.insert(table, [], (1, "a", 1))
        engine.counters.reset()
        with engine.suppress_counting():
            list(engine.segment_scan(table))
        assert engine.counters.page_fetches == 0
        assert engine.counters.rsi_calls == 0

    def test_cluster_table_orders_pages(self):
        catalog, table, engine = make_engine()
        import random

        rng = random.Random(1)
        values = [(i, f"n{i}", rng.randrange(100)) for i in range(500)]
        for row in values:
            engine.insert(table, [], row)
        index = catalog.create_index("T_GRP", "T", ["GRP"], clustered=True)
        engine.create_index(index, table)
        engine.cluster_table(table, index, [index])
        # After clustering, a segment scan returns tuples in GRP order.
        scanned = [vals[2] for __, vals in engine.segment_scan(table)]
        assert scanned == sorted(scanned)
        # And the index agrees with the data.
        via_index = [vals[2] for __, vals in engine.index_scan(index, table)]
        assert via_index == sorted(scanned)
