"""E6 — Figure 4: the extended search tree for pairs, nested-loop joins.

The figure shows second-level solutions (EMP,DEPT), (DEPT,EMP), (JOB,EMP),
(EMP,JOB) built with nested loops; our DP stores the surviving (pair,
order) entries, nested-loop and merge alike — this bench isolates the
nested-loop ones.
"""

from repro.optimizer.binder import Binder
from repro.optimizer.explain import format_order, solutions_table
from repro.optimizer.joins import JoinSearch
from repro.optimizer.plan import NestedLoopJoinNode
from repro.sql import parse_statement
from repro.workloads import FIG1_QUERY


def test_fig4_pairs_nested_loop(empdept, report, benchmark):
    optimizer = empdept.optimizer()

    def search() -> JoinSearch:
        block = Binder(empdept.catalog).bind(parse_statement(FIG1_QUERY))
        return optimizer.run_join_search(block)[0]

    result = benchmark(search)

    pair_rows = solutions_table(result, optimizer.cost_model, size=2)
    nested = [row for row in pair_rows if row["plan"].startswith("NL(")]
    report.line("E6 / Figure 4 — two-relation solutions (nested loops)")
    report.table(
        ["relations", "order", "cost", "rows", "plan"],
        [
            [
                "{" + ",".join(row["relations"]) + "}",
                format_order(row["order"]),
                row["cost"],
                row["rows"],
                row["plan"],
            ]
            for row in nested
        ],
        widths=[14, 14, 12, 12, 44],
    )
    # The join heuristic admits exactly the connected pairs: EMP-DEPT and
    # EMP-JOB (DEPT-JOB has no join predicate).
    pairs = {row["relations"] for row in pair_rows}
    assert ("DEPT", "EMP") in pairs
    assert ("EMP", "JOB") in pairs
    assert ("DEPT", "JOB") not in pairs
    assert nested, "nested-loop solutions must survive for some pair"
    # Every nested-loop solution's outer order is its produced order.
    full_entries = result.solutions_for({"DEPT", "EMP"})
    for entry in full_entries.values():
        if isinstance(entry.plan, NestedLoopJoinNode):
            assert entry.plan.order_columns == entry.plan.outer.order_columns
