"""Column datatypes and value helpers shared across the whole system.

System R supported a handful of scalar types; we implement the three that the
paper's cost model distinguishes (arithmetic vs. non-arithmetic types matter
for the Table 1 interpolation rules):

- ``INTEGER`` — signed 64-bit integer, 8 bytes on a page.
- ``FLOAT``   — IEEE double, 8 bytes on a page.
- ``VARCHAR(n)`` — variable-length string up to *n* bytes, stored with a
  2-byte length prefix.

Values may be NULL.  Comparisons involving NULL evaluate to unknown, which the
engine treats as "does not satisfy the predicate", matching SQL semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SemanticError


class TypeKind(enum.Enum):
    """The scalar type families known to the system."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    VARCHAR = "VARCHAR"


@dataclass(frozen=True)
class DataType:
    """A concrete column type: a kind plus (for VARCHAR) a maximum length."""

    kind: TypeKind
    length: int = 0  # maximum byte length; only meaningful for VARCHAR

    def __post_init__(self) -> None:
        if self.kind is TypeKind.VARCHAR and self.length <= 0:
            raise SemanticError("VARCHAR requires a positive length")

    @property
    def is_arithmetic(self) -> bool:
        """True for types where Table 1's linear interpolation applies."""
        return self.kind in (TypeKind.INTEGER, TypeKind.FLOAT)

    def max_encoded_size(self) -> int:
        """Worst-case bytes this type occupies inside a stored tuple."""
        if self.kind is TypeKind.VARCHAR:
            return 2 + self.length
        return 8

    def validate(self, value: object) -> object:
        """Coerce and range-check a Python value for this type.

        Returns the canonical Python value (int, float, or str), or ``None``
        for NULL.  Raises :class:`SemanticError` on a type mismatch.
        """
        if value is None:
            return None
        if self.kind is TypeKind.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SemanticError(f"expected INTEGER, got {value!r}")
            return value
        if self.kind is TypeKind.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SemanticError(f"expected FLOAT, got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise SemanticError(f"expected VARCHAR, got {value!r}")
        if len(value.encode("utf-8")) > self.length:
            raise SemanticError(
                f"string of {len(value)} chars exceeds VARCHAR({self.length})"
            )
        return value

    def __str__(self) -> str:
        if self.kind is TypeKind.VARCHAR:
            return f"VARCHAR({self.length})"
        return self.kind.value


INTEGER = DataType(TypeKind.INTEGER)
FLOAT = DataType(TypeKind.FLOAT)


def varchar(length: int) -> DataType:
    """Convenience constructor for ``VARCHAR(length)``."""
    return DataType(TypeKind.VARCHAR, length)


def compare_values(left: object, right: object) -> int | None:
    """Three-way compare two column values; ``None`` if either is NULL.

    Mixed int/float comparisons are allowed (both are arithmetic); comparing
    a number with a string raises :class:`SemanticError` because the planner
    should have rejected the query earlier.
    """
    if left is None or right is None:
        return None
    left_num = isinstance(left, (int, float))
    right_num = isinstance(right, (int, float))
    if left_num != right_num:
        raise SemanticError(f"cannot compare {left!r} with {right!r}")
    if left < right:  # type: ignore[operator]
        return -1
    if left > right:  # type: ignore[operator]
        return 1
    return 0
