"""Section 6 semantics: nested and correlated subqueries."""

import pytest

from repro import Database
from repro.workloads import load_rows


@pytest.fixture()
def company():
    db = Database()
    db.execute(
        "CREATE TABLE EMPLOYEE (ENO INTEGER, NAME VARCHAR(20), SALARY INTEGER, "
        "MANAGER INTEGER, DNO INTEGER)"
    )
    db.execute("CREATE TABLE DEPARTMENT (DNO INTEGER, LOCATION VARCHAR(20))")
    # 1 is the big boss; 2 and 3 report to 1; the rest report to 2 or 3.
    load_rows(
        db,
        "EMPLOYEE",
        [
            (1, "ALICE", 100, None, 10),
            (2, "BOB", 80, 1, 10),
            (3, "CAROL", 90, 1, 20),
            (4, "DAN", 85, 2, 10),
            (5, "EVE", 70, 2, 20),
            (6, "FRED", 95, 3, 20),
            (7, "GINA", 60, 3, 10),
        ],
    )
    load_rows(db, "DEPARTMENT", [(10, "DENVER"), (20, "NYC")])
    db.execute("CREATE UNIQUE INDEX E_ENO ON EMPLOYEE (ENO)")
    db.execute("CREATE INDEX E_MGR ON EMPLOYEE (MANAGER)")
    db.execute("UPDATE STATISTICS")
    return db


class TestUncorrelated:
    def test_scalar_average(self, company):
        result = company.execute(
            "SELECT NAME FROM EMPLOYEE WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)"
        )
        # AVG = 82.857...; above it: ALICE, CAROL, DAN, FRED.
        assert sorted(r[0] for r in result.rows) == ["ALICE", "CAROL", "DAN", "FRED"]

    def test_in_subquery(self, company):
        result = company.execute(
            "SELECT NAME FROM EMPLOYEE WHERE DNO IN "
            "(SELECT DNO FROM DEPARTMENT WHERE LOCATION = 'DENVER')"
        )
        assert sorted(r[0] for r in result.rows) == ["ALICE", "BOB", "DAN", "GINA"]

    def test_not_in_subquery(self, company):
        result = company.execute(
            "SELECT NAME FROM EMPLOYEE WHERE DNO NOT IN "
            "(SELECT DNO FROM DEPARTMENT WHERE LOCATION = 'DENVER')"
        )
        assert sorted(r[0] for r in result.rows) == ["CAROL", "EVE", "FRED"]

    def test_uncorrelated_evaluated_once(self, company):
        planned = company.plan(
            "SELECT NAME FROM EMPLOYEE WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)"
        )
        executor = company.executor()
        executor.execute(planned)
        counts = executor.last_runtime.evaluation_counts
        assert list(counts.values()) == [1]


class TestCorrelated:
    PAPER_QUERY = (
        "SELECT NAME FROM EMPLOYEE X WHERE SALARY > "
        "(SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER)"
    ).replace("EMPLOYEE_NUMBER", "ENO")

    def test_earn_more_than_manager(self, company):
        result = company.execute(self.PAPER_QUERY)
        # DAN(85) > BOB(80); FRED(95) > CAROL(90).
        assert sorted(r[0] for r in result.rows) == ["DAN", "FRED"]

    def test_two_level_correlation(self, company):
        # "Earn more than their manager's manager."
        result = company.execute(
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY > "
            "(SELECT SALARY FROM EMPLOYEE WHERE ENO = "
            "(SELECT MANAGER FROM EMPLOYEE WHERE ENO = X.MANAGER))"
        )
        # Managers' managers: for DAN/EVE -> BOB's mgr ALICE(100);
        # for FRED/GINA -> CAROL's mgr ALICE(100).  Nobody beats 100.
        assert result.rows == []

    def test_reevaluated_per_candidate(self, company):
        company.subquery_cache_mode = "none"
        planned = company.plan(self.PAPER_QUERY)
        executor = company.executor()
        executor.execute(planned)
        counts = executor.last_runtime.evaluation_counts
        # One evaluation per EMPLOYEE candidate tuple (7 rows).
        assert sum(counts.values()) == 7

    def test_prev_value_cache_reduces_evaluations(self, company):
        """The paper's ordered-reference optimization.

        When candidate tuples arrive ordered on the referenced column,
        consecutive duplicates reuse the previous evaluation.
        """
        company.subquery_cache_mode = "prev"
        sql = (
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY > "
            "(SELECT AVG(SALARY) FROM EMPLOYEE WHERE MANAGER = X.MANAGER) "
            "ORDER BY MANAGER"
        )
        planned = company.plan(sql)
        executor = company.executor()
        executor.execute(planned)
        cached_count = sum(executor.last_runtime.evaluation_counts.values())

        company.subquery_cache_mode = "none"
        executor2 = company.executor()
        executor2.execute(company.plan(sql))
        uncached_count = sum(executor2.last_runtime.evaluation_counts.values())
        assert cached_count < uncached_count

    def test_memo_mode_minimal_evaluations(self, company):
        company.subquery_cache_mode = "memo"
        planned = company.plan(self.PAPER_QUERY)
        executor = company.executor()
        executor.execute(planned)
        counts = sum(executor.last_runtime.evaluation_counts.values())
        # Distinct manager values: None, 1, 2, 3 -> at most 4 evaluations.
        assert counts <= 4

    def test_cache_modes_agree_on_results(self, company):
        results = []
        for mode in ("prev", "none", "memo"):
            company.subquery_cache_mode = mode
            results.append(sorted(company.execute(self.PAPER_QUERY).rows))
        assert results[0] == results[1] == results[2]

    def test_correlated_in_subquery(self, company):
        result = company.execute(
            "SELECT NAME FROM EMPLOYEE X WHERE 10 IN "
            "(SELECT DNO FROM EMPLOYEE WHERE MANAGER = X.ENO)"
        )
        # Employees managing someone in department 10: ALICE(manages BOB
        # dno10), BOB(manages DAN 10), CAROL(manages GINA 10).
        assert sorted(r[0] for r in result.rows) == ["ALICE", "BOB", "CAROL"]
