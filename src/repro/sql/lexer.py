"""A hand-written lexer for the SQL subset.

Keywords and identifiers are case-insensitive and normalized to upper case;
string literals (single-quoted, with ``''`` as the escape for a quote)
preserve their exact contents.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import LexerError


class TokenType(enum.Enum):
    """Kinds of lexical tokens."""
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    SYMBOL = "SYMBOL"
    EOF = "EOF"


KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "ORDER", "BY",
        "ASC", "DESC", "AND", "OR", "NOT", "BETWEEN", "IN", "IS", "NULL",
        "LIKE", "AS", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
        "DELETE", "CREATE", "DROP", "TABLE", "INDEX", "UNIQUE", "CLUSTER",
        "ON", "INTEGER", "INT", "FLOAT", "VARCHAR", "STATISTICS", "HAVING",
        "SEGMENT",
    }
)

_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "+", "-", "*", "/")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset."""
    type: TokenType
    value: object
    position: int

    def matches_keyword(self, keyword: str) -> bool:
        """True when this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == keyword

    def matches_symbol(self, symbol: str) -> bool:
        """True when this token is the given symbol."""
        return self.type is TokenType.SYMBOL and self.value == symbol

    def __str__(self) -> str:
        if self.type is TokenType.EOF:
            return "<end of input>"
        return repr(self.value)


class Lexer:  # concurrency: statement-scoped
    """Streaming tokenizer over SQL text."""

    def __init__(self, text: str):
        self._text = text
        self._position = 0

    def tokens(self) -> list[Token]:
        """Tokenize the whole input, ending with EOF."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        text, position = self._text, self._position
        if position >= len(text):
            return Token(TokenType.EOF, None, position)
        char = text[position]
        if char == "'":
            return self._string_literal()
        if char.isdigit() or (
            char == "." and position + 1 < len(text) and text[position + 1].isdigit()
        ):
            return self._number()
        if char.isalpha() or char == "_":
            return self._word()
        for symbol in _SYMBOLS:
            if text.startswith(symbol, position):
                self._position += len(symbol)
                value = "<>" if symbol == "!=" else symbol
                return Token(TokenType.SYMBOL, value, position)
        raise LexerError(f"unexpected character {char!r}", position)

    def _skip_whitespace_and_comments(self) -> None:
        text = self._text
        while self._position < len(text):
            char = text[self._position]
            if char.isspace():
                self._position += 1
            elif text.startswith("--", self._position):
                newline = text.find("\n", self._position)
                self._position = len(text) if newline < 0 else newline + 1
            else:
                return

    def _string_literal(self) -> Token:
        text, start = self._text, self._position
        position = start + 1
        parts: list[str] = []
        while position < len(text):
            char = text[position]
            if char == "'":
                if text.startswith("''", position):
                    parts.append("'")
                    position += 2
                    continue
                self._position = position + 1
                return Token(TokenType.STRING, "".join(parts), start)
            parts.append(char)
            position += 1
        raise LexerError("unterminated string literal", start)

    def _number(self) -> Token:
        text, start = self._text, self._position
        position = start
        is_float = False
        while position < len(text) and (
            text[position].isdigit() or text[position] == "."
        ):
            if text[position] == ".":
                # ``EMP.DNO`` must not swallow the dot after a digitless run,
                # and ``1.2.3`` is malformed.
                if is_float:
                    raise LexerError("malformed number", start)
                is_float = True
            position += 1
        literal = text[start:position]
        if literal.endswith("."):
            # Trailing dot belongs to a qualified name, not the number.
            position -= 1
            literal = literal[:-1]
            is_float = False
        self._position = position
        if is_float:
            return Token(TokenType.FLOAT, float(literal), start)
        return Token(TokenType.INTEGER, int(literal), start)

    def _word(self) -> Token:
        text, start = self._text, self._position
        position = start
        while position < len(text) and (
            text[position].isalnum() or text[position] == "_"
        ):
            position += 1
        self._position = position
        word = text[start:position].upper()
        if word in KEYWORDS:
            return Token(TokenType.KEYWORD, word, start)
        return Token(TokenType.IDENT, word, start)


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text, including the trailing EOF token."""
    return Lexer(text).tokens()
