"""Tests for the baseline planners and plan-space enumeration."""

import pytest

from repro.baselines import (
    ExhaustivePlanner,
    GreedyPlanner,
    NaivePlanner,
    RandomPlanner,
)
from repro.optimizer.binder import Binder
from repro.optimizer.plan import ScanNode, SegmentAccess, walk_plan
from repro.sql import parse_statement
from repro.workloads import FIG1_QUERY

TWO_WAY = "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = 'NYC'"


def bind(db, sql):
    return Binder(db.catalog).bind(parse_statement(sql))


@pytest.fixture(scope="module")
def reference_rows(empdept):
    return {
        FIG1_QUERY: sorted(empdept.execute(FIG1_QUERY).rows),
        TWO_WAY: sorted(empdept.execute(TWO_WAY).rows),
    }


class TestPlannersAgreeOnResults:
    @pytest.mark.parametrize("sql", [FIG1_QUERY, TWO_WAY])
    def test_greedy(self, empdept, reference_rows, sql):
        planner = GreedyPlanner(empdept.optimizer(), empdept.catalog)
        planned = planner.plan_block(bind(empdept, sql))
        rows = sorted(empdept.executor().execute(planned).rows)
        assert rows == reference_rows[sql]

    @pytest.mark.parametrize("sql", [FIG1_QUERY, TWO_WAY])
    def test_naive(self, empdept, reference_rows, sql):
        planner = NaivePlanner(empdept.optimizer(), empdept.catalog)
        planned = planner.plan_block(bind(empdept, sql))
        rows = sorted(empdept.executor().execute(planned).rows)
        assert rows == reference_rows[sql]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_seeds(self, empdept, reference_rows, seed):
        planner = RandomPlanner(empdept.optimizer(), empdept.catalog, seed=seed)
        planned = planner.plan_block(bind(empdept, FIG1_QUERY))
        rows = sorted(empdept.executor().execute(planned).rows)
        assert rows == reference_rows[FIG1_QUERY]


class TestNaiveShape:
    def test_only_segment_scans_and_nested_loops(self, empdept):
        planner = NaivePlanner(empdept.optimizer(), empdept.catalog)
        planned = planner.plan_block(bind(empdept, FIG1_QUERY))
        for node in walk_plan(planned.root):
            if isinstance(node, ScanNode):
                assert isinstance(node.access, SegmentAccess)

    def test_naive_costs_at_least_optimizer(self, empdept):
        optimizer = empdept.optimizer()
        chosen = optimizer.plan_block(bind(empdept, FIG1_QUERY))
        naive = NaivePlanner(optimizer, empdept.catalog).plan_block(
            bind(empdept, FIG1_QUERY)
        )
        assert naive.estimated_total() >= chosen.estimated_total()


class TestExhaustive:
    def test_enumerates_many_plans(self, empdept):
        planner = ExhaustivePlanner(empdept.optimizer(), empdept.catalog)
        statements = planner.enumerate_statements(bind(empdept, TWO_WAY))
        assert len(statements) > 5

    def test_all_plans_same_result(self, empdept, reference_rows):
        planner = ExhaustivePlanner(empdept.optimizer(), empdept.catalog)
        statements = planner.enumerate_statements(bind(empdept, TWO_WAY))
        executor = empdept.executor()
        for planned in statements:
            rows = sorted(executor.execute(planned).rows)
            assert rows == reference_rows[TWO_WAY]

    def test_max_plans_cap(self, empdept):
        planner = ExhaustivePlanner(empdept.optimizer(), empdept.catalog)
        statements = planner.enumerate_statements(
            bind(empdept, FIG1_QUERY), max_plans=10
        )
        assert len(statements) == 10

    def test_plan_count_estimate_grows(self, empdept):
        planner = ExhaustivePlanner(empdept.optimizer(), empdept.catalog)
        two = planner.plan_count_estimate(bind(empdept, TWO_WAY))
        three = planner.plan_count_estimate(bind(empdept, FIG1_QUERY))
        assert three > two


class TestRandomDeterminism:
    def test_same_seed_same_plan(self, empdept):
        plans = []
        for __ in range(2):
            planner = RandomPlanner(empdept.optimizer(), empdept.catalog, seed=9)
            planned = planner.plan_block(bind(empdept, FIG1_QUERY))
            plans.append(planned.estimated_total())
        assert plans[0] == plans[1]
