"""Dynamic-programming join enumeration (Section 5).

The search finds the best join order by solving successively larger subsets
of the FROM list.  For every subset it keeps the cheapest solution per
interesting-order equivalence class plus the cheapest unordered solution.
Extensions are left-deep: the composite so far is the outer, the new
relation the inner, joined by nested loops (inner accessed through any of
its paths, join predicates becoming probe SARGs) or by merging scans (both
sides ordered on the join column, sorting whichever side lacks the order).

The join-order heuristic defers Cartesian products: a relation with no join
predicate linking it to the composite is considered only when no connected
relation remains.

Representation: relation subsets are interned integer bitmasks.  Every
alias gets a bit position at construction; ``best``, the prune records,
and ``SearchStats.survivor_totals`` are keyed by ``int`` masks, relation
connectivity is a per-alias adjacency mask (``_connects`` is one AND),
and factor applicability is a subset test on precomputed factor masks.
Derived quantities the seed enumerator recomputed per candidate —
subset cardinalities, composite tuple widths, factor selectivities,
canonical order keys, and inner-relation access path enumerations — are
memoized, so the per-extension constant factor stays close to the cost
arithmetic itself (the paper's "a few thousand instructions" claim,
Section 8).  ``aliases_of``/``mask_of`` translate at the boundary for
audits and rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..catalog.catalog import Catalog
from ..errors import PlannerError
from ..sql import ast
from .access_paths import (
    PathCandidate,
    enumerate_paths,
    inner_resident_cap,
    probe_factor,
)
from .bound import BoundColumn, BoundQueryBlock
from .cost import Cost, CostModel, ZERO_COST, tuple_byte_width
from .orders import InterestingOrders, OrderKey, UNORDERED
from .plan import (
    HashJoinNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from .predicates import BooleanFactor, join_factor_as_sarg, partition_factors
from .selectivity import SelectivityEstimator


@dataclass
class JoinEntry:
    """The cheapest known solution for (relation subset, order class)."""

    plan: PlanNode
    order_key: OrderKey

    @property
    def cost(self) -> Cost:
        """The entry's predicted cost."""
        return self.plan.cost

    @property
    def rows(self) -> float:
        """The entry's estimated output cardinality."""
        return self.plan.rows


@dataclass(frozen=True)
class PrunedCandidate:
    """A solution the DP discarded, kept for the prune audit.

    Recorded only under ``record_prunes`` (the ``REPRO_CHECK=1`` path):
    the cost auditor verifies that every pruned candidate really was no
    cheaper than the survivor of its (relation set, order class).
    ``mask`` is the search's bitmask subset key; translate it through
    ``SearchStats.alias_order`` at the audit boundary.
    """

    mask: int
    order_key: OrderKey
    total: float


@dataclass
class SearchStats:
    """Bookkeeping for the optimization-cost experiments (E10, A3)."""

    plans_considered: int = 0
    entries_stored: int = 0
    subsets_expanded: int = 0
    extensions_pruned_by_heuristic: int = 0
    #: Bit position -> alias name, so mask keys can be translated back to
    #: relation sets outside the search (prune audit, rendering).
    alias_order: tuple[str, ...] = ()
    #: Filled only when the search runs with ``record_prunes=True``.
    pruned: list[PrunedCandidate] = field(default_factory=list)
    survivor_totals: dict[tuple[int, OrderKey], float] = field(
        default_factory=dict
    )

    def aliases_of(self, mask: int) -> frozenset[str]:
        """Translate a subset bitmask back into its alias names."""
        return frozenset(
            alias
            for position, alias in enumerate(self.alias_order)
            if mask >> position & 1
        )


class JoinSearch:  # concurrency: statement-scoped
    """One DP search over a bound query block's FROM list."""

    def __init__(
        self,
        block: BoundQueryBlock,
        factors: list[BooleanFactor],
        catalog: Catalog,
        estimator: SelectivityEstimator,
        cost_model: CostModel,
        orders: InterestingOrders,
        use_heuristic: bool = True,
        use_interesting_orders: bool = True,
        record_prunes: bool = False,
        use_hash_join: bool = True,
    ):
        self._block = block
        self._catalog = catalog
        self._estimator = estimator
        self._cost = cost_model
        self._orders = orders
        self._use_heuristic = use_heuristic
        self._use_orders = use_interesting_orders
        self._record_prunes = record_prunes
        self._use_hash = use_hash_join
        self.stats = SearchStats()

        self._aliases = block.aliases
        partition = partition_factors(factors, self._aliases)
        self._local = partition.local
        self._join_factors = partition.joins
        self._multi_factors = partition.multi
        self.constant_factors = partition.constant

        # -- bitmask universe: one bit per FROM-list alias -----------------
        self._bit_of: dict[str, int] = {
            alias: position for position, alias in enumerate(self._aliases)
        }
        count = len(self._aliases)
        self._full_mask = (1 << count) - 1
        self.stats.alias_order = tuple(self._aliases)

        # Per-alias adjacency: which other relations share a join factor.
        self._adjacency = [0] * count
        # Join/multi factors paired with their alias masks, and indexed by
        # the alias they touch (a factor becomes newly applicable only
        # through one of its own relations joining the composite).
        self._subset_factors: list[tuple[BooleanFactor, int]] = []
        self._joins_touching: list[list[tuple[BooleanFactor, int]]] = [
            [] for __ in range(count)
        ]
        self._multi_touching: list[list[tuple[BooleanFactor, int]]] = [
            [] for __ in range(count)
        ]
        for factor in self._join_factors:
            mask = self._mask_of_aliases(factor.aliases)
            self._subset_factors.append((factor, mask))
            for position in _bits(mask):
                self._adjacency[position] |= mask & ~(1 << position)
                self._joins_touching[position].append((factor, mask))
        for factor in self._multi_factors:
            mask = self._mask_of_aliases(factor.aliases)
            self._subset_factors.append((factor, mask))
            for position in _bits(mask):
                self._multi_touching[position].append((factor, mask))

        # Per-alias constants, fetched exactly once per search.
        self._tables = [self._block.alias_table(alias) for alias in self._aliases]
        self._alias_bytes = [tuple_byte_width(table) for table in self._tables]
        self._alias_rows = [0.0] * count

        # Memoization layers for the extension loop.
        self._selectivity_cache: dict[int, tuple[BooleanFactor, float]] = {}
        self._subset_rows_cache: dict[int, float] = {}
        self._composite_bytes_cache: dict[int, int] = {}
        self._plain_paths: list[list[PathCandidate]] = [[] for __ in range(count)]
        self._merge_side: dict[int, tuple[PathCandidate, Cost, float]] = {}
        self._inner_paths: dict[
            tuple[int, tuple[int, ...], float],
            list[tuple[PathCandidate, float | None]],
        ] = {}

        self.best: dict[int, dict[OrderKey, JoinEntry]] = {}
        self._masks_by_size: list[list[int]] = [
            [] for __ in range(count + 1)
        ]

    # -- public API -------------------------------------------------------------

    def search(self) -> dict[OrderKey, JoinEntry]:
        """Run the DP; returns the solutions for the full FROM list."""
        for alias in self._aliases:
            self._seed_single(alias)
        for size in range(2, len(self._aliases) + 1):
            for mask in list(self._masks_by_size[size - 1]):
                self.stats.subsets_expanded += 1
                for position in self._candidate_extensions(mask):
                    self._extend(mask, position)
        full = self._full_mask
        if full not in self.best or not self.best[full]:
            raise PlannerError("join search produced no complete solution")
        if self._record_prunes:
            # Snapshot the survivors so the prune audit can replay every
            # discard decision against the entry that beat it.
            for mask, entries in self.best.items():
                for key, entry in entries.items():
                    self.stats.survivor_totals[(mask, key)] = (
                        self._cost.total(entry.cost)
                    )
        return self.best[full]

    def mask_of(self, aliases: Iterable[str]) -> int:
        """The bitmask subset key for a collection of alias names."""
        return self._mask_of_aliases(aliases)

    def aliases_of(self, mask: int) -> frozenset[str]:
        """The alias names a bitmask subset key denotes."""
        return self.stats.aliases_of(mask)

    def solutions_for(
        self, aliases: Iterable[str] | int
    ) -> dict[OrderKey, JoinEntry]:
        """Surviving entries for one relation subset (names or mask)."""
        mask = aliases if isinstance(aliases, int) else self.mask_of(aliases)
        return self.best.get(mask, {})

    def cheapest(self, solutions: dict[OrderKey, JoinEntry]) -> JoinEntry:
        """The minimum-total entry of a solution set."""
        return min(solutions.values(), key=lambda e: self._cost.total(e.cost))

    def total_entries(self) -> int:
        """Entries stored across all subsets (the 2^n-bound metric)."""
        return sum(len(entries) for entries in self.best.values())

    # -- DP seeding and extension ---------------------------------------------------

    def _seed_single(self, alias: str) -> None:
        position = self._bit_of[alias]
        table = self._tables[position]
        candidates = enumerate_paths(
            alias,
            table,
            self._local[alias],
            self._catalog,
            self._estimator,
            self._cost,
            self._orders,
        )
        self._plain_paths[position] = candidates
        rows = self._cost.ncard(table)
        for factor in self._local[alias]:
            rows *= self._factor_selectivity(factor)
        self._alias_rows[position] = rows
        for candidate in candidates:
            self._record(1 << position, candidate.node, candidate.order_key)

    def _candidate_extensions(self, mask: int) -> list[int]:
        remaining_mask = self._full_mask & ~mask
        if not remaining_mask:
            return []
        remaining = list(_bits(remaining_mask))
        if not self._use_heuristic:
            return remaining
        connected = [
            position
            for position in remaining
            if self._adjacency[position] & mask
        ]
        if connected:
            self.stats.extensions_pruned_by_heuristic += len(remaining) - len(
                connected
            )
            return connected
        return remaining  # Cartesian product cannot be deferred any further

    def _connects(self, alias: str, mask: int) -> bool:
        return bool(self._adjacency[self._bit_of[alias]] & mask)

    def _extend(self, mask: int, position: int) -> None:
        bit = 1 << position
        new_mask = mask | bit
        rows_out = self._subset_rows(new_mask)
        connecting = [
            factor
            for factor, factor_mask in self._joins_touching[position]
            if not factor_mask & ~new_mask
        ]
        newly_applicable = [
            factor.expr
            for factor, factor_mask in self._multi_touching[position]
            if not factor_mask & ~new_mask
        ]
        self._extend_nested_loop(
            mask, position, new_mask, rows_out, connecting, newly_applicable
        )
        self._extend_merge(
            mask, position, new_mask, rows_out, connecting, newly_applicable
        )
        if self._use_hash:
            self._extend_hash(
                mask, position, new_mask, rows_out, connecting, newly_applicable
            )

    # -- nested loops ---------------------------------------------------------------

    def _extend_nested_loop(
        self,
        mask: int,
        position: int,
        new_mask: int,
        rows_out: float,
        connecting: list[BooleanFactor],
        extra_residual: list[ast.Expr],
    ) -> None:
        alias = self._aliases[position]
        probes: list[BooleanFactor] = []
        join_residual: list[ast.Expr] = []
        for factor in connecting:
            sarg = join_factor_as_sarg(factor, alias)
            if sarg is not None:
                probes.append(probe_factor(factor, sarg))
            else:
                join_residual.append(factor.expr)
        probe_ids = tuple(id(factor) for factor in connecting)
        for entry in list(self.best.get(mask, {}).values()):
            # Buffer pages left for the inner depend on how much of the
            # pool the outer pipeline (including prior resident inners)
            # already claims.
            available = self._cost.inner_available_buffer(
                entry.plan.buffer_claim
            )
            inner_candidates = self._inner_candidates(
                position, probe_ids, probes, available
            )
            entry_rows = entry.rows
            inner, cap = min(
                inner_candidates,
                key=lambda pair: self._cost.total(
                    self._cost.nested_loop_cost(
                        ZERO_COST, entry_rows, pair[0].node.cost, pair[1]
                    )
                ),
            )
            self.stats.plans_considered += 1
            cost = self._cost.nested_loop_cost(
                entry.cost, entry_rows, inner.node.cost, cap
            )
            node = NestedLoopJoinNode(
                outer=entry.plan,
                inner=inner.node,
                residual=join_residual + extra_residual,
                cost=cost,
                rows=rows_out,
                order_columns=entry.plan.order_columns,
                buffer_claim=entry.plan.buffer_claim
                + (cap if cap is not None else 2.0),
            )
            self._record(new_mask, node, entry.order_key)

    def _inner_candidates(
        self,
        position: int,
        probe_ids: tuple[int, ...],
        probes: list[BooleanFactor],
        available: float,
    ) -> list[tuple[PathCandidate, float | None]]:
        """Costed inner paths with their resident caps, memoized.

        Many outer entries share one buffer claim, and many subsets share
        one connecting-factor set: the (alias, probes, buffer) triple
        fully determines the candidate list, so the seed's per-entry
        ``enumerate_paths`` call collapses into a dict hit.
        """
        key = (position, probe_ids, available)
        cached = self._inner_paths.get(key)
        if cached is None:
            alias = self._aliases[position]
            candidates = enumerate_paths(
                alias,
                self._tables[position],
                self._local[alias],
                self._catalog,
                self._estimator,
                self._cost,
                self._orders,
                probe_factors=probes,
                available_buffer=available,
            )
            cached = self._inner_paths[key] = [
                (
                    candidate,
                    inner_resident_cap(self._cost, candidate.node, available),
                )
                for candidate in candidates
            ]
        return cached

    # -- merging scans ----------------------------------------------------------------

    def _extend_merge(
        self,
        mask: int,
        position: int,
        new_mask: int,
        rows_out: float,
        connecting: list[BooleanFactor],
        extra_residual: list[ast.Expr],
    ) -> None:
        equijoins = [
            f for f in connecting if f.join is not None and f.join.is_equijoin
        ]
        if not equijoins:
            return
        alias = self._aliases[position]
        inner_rows = self._alias_rows[position]
        entries = self.best.get(mask, {})
        if not entries:
            return
        cheapest_outer = min(
            entries.values(), key=lambda e: self._cost.total(e.cost)
        )
        for merge_factor in equijoins:
            join = merge_factor.join
            assert join is not None
            inner_column = join.column_for(alias)
            outer_column = join.other_column(alias)
            merge_class = self._orders.class_of_column(inner_column)
            matches = self._merge_matches(mask, position, merge_factor)
            residual = [
                f.expr for f in equijoins if f is not merge_factor
            ] + [
                f.expr
                for f in connecting
                if f.join is not None and not f.join.is_equijoin
            ] + extra_residual

            inner_options = self._merge_inner_options(
                position, inner_column, merge_class, inner_rows, matches
            )
            outer_options = self._merge_outer_options(
                mask, entries, cheapest_outer, outer_column, merge_class
            )
            for outer_plan, outer_key in outer_options:
                for inner_plan, inner_cost in inner_options:
                    self.stats.plans_considered += 1
                    cost = outer_plan.cost + inner_cost
                    order_columns = (
                        (outer_column.alias, outer_column.position),
                    )
                    node = MergeJoinNode(
                        outer=outer_plan,
                        inner=inner_plan,
                        outer_column=outer_column,
                        inner_column=inner_column,
                        residual=residual,
                        cost=cost,
                        rows=rows_out,
                        order_columns=order_columns,
                        buffer_claim=outer_plan.buffer_claim
                        + inner_plan.buffer_claim,
                    )
                    self._record(
                        new_mask, node, self._canonical((merge_class,))
                    )

    def _merge_inner_side(
        self, position: int
    ) -> tuple[PathCandidate, Cost, float]:
        """Per-alias constants of the sorted-inner option, memoized:
        the cheapest plain path, its sort build cost, and TEMPPAGES."""
        cached = self._merge_side.get(position)
        if cached is None:
            plain_paths = self._plain_paths[position]
            cheapest = min(
                plain_paths, key=lambda c: self._cost.total(c.node.cost)
            )
            inner_rows = self._alias_rows[position]
            inner_bytes = self._alias_bytes[position]
            temp_pages = self._cost.temp_pages(inner_rows, inner_bytes)
            build = self._cost.sort_build_cost(
                cheapest.node.cost, inner_rows, inner_bytes
            )
            cached = self._merge_side[position] = (cheapest, build, temp_pages)
        return cached

    def _merge_inner_options(
        self,
        position: int,
        inner_column: BoundColumn,
        merge_class: int,
        inner_rows: float,
        matches: float,
    ) -> list[tuple[PlanNode, Cost]]:
        """Ways to present the inner relation in join-column order.

        Either an index path already ordered on the merge class, or the
        cheapest path sorted into a temporary list.  The returned cost is
        the *total* inner-side contribution: one ordered pass plus the RSI
        traffic of emitting matches (group re-reads included).
        """
        options: list[tuple[PlanNode, Cost]] = []
        for candidate in self._plain_paths[position]:
            if candidate.order_key[:1] == (merge_class,):
                inner_cost = Cost(
                    pages=candidate.node.cost.pages,
                    rsi=max(candidate.node.cost.rsi, matches),
                )
                options.append((candidate.node, inner_cost))
        cheapest, build, temp_pages = self._merge_inner_side(position)
        sort_total = build + Cost(pages=temp_pages, rsi=max(inner_rows, matches))
        sort_node = SortNode(
            child=cheapest.node,
            keys=[(inner_column, False)],
            cost=sort_total,
            rows=cheapest.node.rows,
            order_columns=((inner_column.alias, inner_column.position),),
        )
        options.append((sort_node, sort_total))
        # Keep at most the two cheapest inner options; more never win.
        options.sort(key=lambda pair: self._cost.total(pair[1]))
        return options[:2]

    def _merge_outer_options(
        self,
        mask: int,
        entries: dict[OrderKey, JoinEntry],
        cheapest: JoinEntry,
        outer_column: BoundColumn,
        merge_class: int,
    ) -> list[tuple[PlanNode, OrderKey]]:
        """Outer sides ordered on the merge class: reuse an order or sort."""
        options: list[tuple[PlanNode, OrderKey]] = []
        for entry in entries.values():
            if entry.order_key[:1] == (merge_class,):
                options.append((entry.plan, entry.order_key))
        outer_bytes = self._composite_bytes(mask)
        build = self._cost.sort_build_cost(
            cheapest.cost, cheapest.rows, outer_bytes
        )
        read_back = self._cost.temp_scan_cost(cheapest.rows, outer_bytes)
        sort_node = SortNode(
            child=cheapest.plan,
            keys=[(outer_column, False)],
            cost=build + read_back,
            rows=cheapest.rows,
            order_columns=((outer_column.alias, outer_column.position),),
        )
        options.append((sort_node, self._canonical((merge_class,))))
        options.sort(key=lambda pair: self._cost.total(pair[0].cost))
        return options[:2]

    # -- hash join --------------------------------------------------------------------

    def _extend_hash(
        self,
        mask: int,
        position: int,
        new_mask: int,
        rows_out: float,
        connecting: list[BooleanFactor],
        extra_residual: list[ast.Expr],
    ) -> None:
        """Hash the new relation and probe it with the composite.

        The new relation is the build side, so a candidate is recorded
        only when its cardinality does not exceed the composite's (the
        build-side rule: hash the smaller input).  The DP enumerates the
        mirrored join order separately, which covers the opposite case.
        All connecting equijoins become hash-key pairs; everything else
        stays residual.  Hash output carries no order, so the plan is
        recorded UNORDERED and competes against sort-enforced ordered
        plans at solution choice.
        """
        equijoins = [
            f for f in connecting if f.join is not None and f.join.is_equijoin
        ]
        if not equijoins:
            return
        entries = self.best.get(mask, {})
        if not entries:
            return
        alias = self._aliases[position]
        build_rows = self._alias_rows[position]
        probe_rows = self._subset_rows(mask)
        if build_rows > probe_rows:
            return
        build = min(
            (
                candidate
                for candidate in self._plain_paths[position]
                if isinstance(candidate.node, ScanNode)
            ),
            key=lambda c: self._cost.total(c.node.cost),
        )
        keys: list[tuple[BoundColumn, BoundColumn]] = []
        matches = probe_rows * build_rows
        for factor in equijoins:
            join = factor.join
            assert join is not None
            keys.append((join.other_column(alias), join.column_for(alias)))
            matches *= self._factor_selectivity(factor)
        residual = [
            f.expr
            for f in connecting
            if f.join is None or not f.join.is_equijoin
        ] + extra_residual
        outer = min(entries.values(), key=lambda e: self._cost.total(e.cost))
        available = self._cost.inner_available_buffer(outer.plan.buffer_claim)
        inner_bytes = self._alias_bytes[position]
        self.stats.plans_considered += 1
        cost, partitions = self._cost.hash_join_cost(
            outer.cost,
            outer.rows,
            build.node.cost,
            build_rows,
            matches,
            self._composite_bytes(mask),
            inner_bytes,
            available_buffer=available,
        )
        build_pages = self._cost.temp_pages(build_rows, inner_bytes)
        node = HashJoinNode(
            outer=outer.plan,
            inner=build.node,
            keys=keys,
            residual=residual,
            matches=matches,
            partitions=partitions,
            cost=cost,
            rows=rows_out,
            order_columns=(),
            buffer_claim=outer.plan.buffer_claim + min(build_pages, available),
        )
        self._record(new_mask, node, UNORDERED)

    # -- estimates --------------------------------------------------------------------

    def _subset_rows(self, mask: int) -> float:
        rows = self._subset_rows_cache.get(mask)
        if rows is None:
            rows = 1.0
            for position in _bits(mask):
                rows *= self._alias_rows[position]
            for factor, factor_mask in self._subset_factors:
                if not factor_mask & ~mask:
                    rows *= self._factor_selectivity(factor)
            self._subset_rows_cache[mask] = rows
        return rows

    def _merge_matches(
        self, mask: int, position: int, merge_factor: BooleanFactor
    ) -> float:
        """Expected tuples crossing the inner RSI during the merge."""
        return (
            self._subset_rows(mask)
            * self._alias_rows[position]
            * self._factor_selectivity(merge_factor)
        )

    def _factor_selectivity(self, factor: BooleanFactor) -> float:
        key = id(factor)
        cached = self._selectivity_cache.get(key)
        if cached is None:
            # The factor reference in the value pins the object alive, so
            # its id cannot be recycled while the cache holds it.
            cached = self._selectivity_cache[key] = (
                factor,
                self._estimator.factor_selectivity(factor),
            )
        return cached[1]

    def _composite_bytes(self, mask: int) -> int:
        cached = self._composite_bytes_cache.get(mask)
        if cached is None:
            cached = self._composite_bytes_cache[mask] = sum(
                self._alias_bytes[position] for position in _bits(mask)
            )
        return cached

    # -- solution table ----------------------------------------------------------------

    def _mask_of_aliases(self, aliases: Iterable[str]) -> int:
        mask = 0
        for alias in aliases:
            mask |= 1 << self._bit_of[alias]
        return mask

    def _canonical(self, order: OrderKey) -> OrderKey:
        if not self._use_orders:
            return UNORDERED
        return self._orders.canonicalize(order)

    def _record(self, mask: int, plan: PlanNode, order_key: OrderKey) -> None:
        key = self._canonical(order_key)
        table = self.best.get(mask)
        if table is None:
            table = self.best[mask] = {}
            self._masks_by_size[mask.bit_count()].append(mask)
        self.stats.plans_considered += 1
        existing = table.get(key)
        total = self._cost.total(plan.cost)
        if existing is None:
            self.stats.entries_stored += 1
            table[key] = JoinEntry(plan=plan, order_key=key)
        elif total < self._cost.total(existing.cost):
            if self._record_prunes:
                self.stats.pruned.append(
                    PrunedCandidate(mask, key, self._cost.total(existing.cost))
                )
            table[key] = JoinEntry(plan=plan, order_key=key)
        elif self._record_prunes:
            self.stats.pruned.append(PrunedCandidate(mask, key, total))


def _bits(mask: int):
    """Bit positions set in ``mask``, lowest first."""
    position = 0
    while mask:
        if mask & 1:
            yield position
        mask >>= 1
        position += 1
