"""Cost-model auditing: re-derive TABLE 1 / TABLE 2 quantities and check
the algebraic invariants every cost computation must satisfy.

Three layers:

- ``audit_statement`` walks a planned statement: every boolean factor's
  selectivity factor F must lie in ``[0, 1]``, every node's cost components
  must be finite and non-negative, costs must be monotone along the outer
  spine (a join never costs less than its outer input), nested-loop and
  merge costs must be consistent with the paper's ``C-outer + N * C-inner``
  shape, hash-join costs must match the Table-2-style build/probe formula
  exactly (including the grace spill term) with the smaller input chosen
  as the build side, and cardinality estimates must respect operator
  semantics (sorts preserve rows, filters and grouping never increase
  them).
- ``audit_cost_model`` re-derives the TABLE 2 access path formulas for
  every table and index in a catalog and compares them against what
  :class:`~repro.optimizer.cost.CostModel` actually returns, including the
  clustered ≤ non-clustered dominance and monotonicity in the matched
  selectivity; it also sanity-checks the statistics themselves.
- ``audit_search_stats`` verifies the DP search's pruning decisions: no
  pruned candidate may have been cheaper than the surviving solution of
  its (relation set, order class) equivalence class.
"""

from __future__ import annotations

import math

from ..catalog.catalog import Catalog
from ..optimizer.bound import BoundQueryBlock
from ..optimizer.cost import (
    Cost,
    CostModel,
    DEFAULT_W,
    HASH_TUPLE_FACTOR,
    tuple_byte_width,
)
from ..optimizer.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexAccess,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from ..optimizer.planner import PlannedStatement
from ..optimizer.predicates import BooleanFactor
from ..optimizer.selectivity import SelectivityEstimator
from .plan_check import Violation

#: Relative tolerance for floating-point cost comparisons.
_EPS = 1e-6


def _leq(a: float, b: float) -> bool:
    """``a <= b`` with a relative-and-absolute float tolerance."""
    return a <= b + _EPS * max(1.0, abs(a), abs(b))


def _close(a: float, b: float) -> bool:
    """``a == b`` under the same tolerance (never compare floats with ==)."""
    return _leq(a, b) and _leq(b, a)


# ---------------------------------------------------------------------------
# statement-level audit
# ---------------------------------------------------------------------------


def audit_statement(
    planned: PlannedStatement, catalog: Catalog
) -> list[Violation]:
    """Audit one planned statement's selectivities and plan-tree costs."""
    violations: list[Violation] = []
    estimator = SelectivityEstimator(catalog)
    checked: set[int] = set()
    stack: list[PlannedStatement] = [planned]
    for sub in planned.subquery_plans.values():
        stack.append(sub)
    for statement in stack:
        if id(statement) in checked:
            continue
        checked.add(id(statement))
        _audit_selectivities(statement, estimator, violations)
        auditor = _PlanAuditor(catalog, violations)
        auditor.audit(statement.root)
    return violations


def _audit_selectivities(
    planned: PlannedStatement,
    estimator: SelectivityEstimator,
    violations: list[Violation],
) -> None:
    """TABLE 1: every selectivity factor F is a fraction in [0, 1]."""
    for factor in planned.factors:
        f = estimator.factor_selectivity(factor)
        if not math.isfinite(f) or f < 0.0 or f > 1.0:
            violations.append(
                Violation(
                    "selectivity-out-of-range",
                    f"block #{planned.block.block_id}",
                    f"factor {factor} has selectivity {f!r}, outside [0, 1]",
                )
            )


class _PlanAuditor:
    """Walks one plan tree checking the numeric cost/cardinality invariants."""

    def __init__(self, catalog: Catalog, violations: list[Violation]):
        self._catalog = catalog
        self._violations = violations

    def audit(self, root: PlanNode) -> None:
        """Audit every node of the tree."""
        self._audit_node(root)

    def _audit_node(self, node: PlanNode) -> None:
        for child in node.children():
            self._audit_node(child)
        self._basic_numbers(node)
        if isinstance(node, ScanNode):
            self._audit_scan(node)
        elif isinstance(node, NestedLoopJoinNode):
            self._audit_nested_loop(node)
        elif isinstance(node, MergeJoinNode):
            self._audit_merge(node)
        elif isinstance(node, HashJoinNode):
            self._audit_hash_join(node)
        elif isinstance(node, SortNode):
            self._audit_sort(node)
        elif isinstance(node, FilterNode):
            self._shrinking(node, node.child)
        elif isinstance(node, AggregateNode):
            self._audit_aggregate(node)
        elif isinstance(node, ProjectNode):
            self._preserving(node, node.child)
        elif isinstance(node, DistinctNode):
            self._shrinking(node, node.child)
        else:
            self._flag(
                "unknown-node",
                node,
                f"no cost audit for plan node type {type(node).__name__}",
            )

    # -- per-node invariants ---------------------------------------------------

    def _basic_numbers(self, node: PlanNode) -> None:
        for name, value in (
            ("cost.pages", node.cost.pages),
            ("cost.rsi", node.cost.rsi),
            ("rows", node.rows),
            ("buffer_claim", node.buffer_claim),
        ):
            if not math.isfinite(value):
                self._flag("non-finite", node, f"{name} is {value!r}")
            elif value < 0.0:
                self._flag("negative-estimate", node, f"{name} is {value!r}")

    def _audit_scan(self, node: ScanNode) -> None:
        stats = self._catalog.relation_stats(node.table.name)
        if stats is not None and not _leq(node.rows, float(stats.ncard)):
            self._flag(
                "rows-exceed-ncard",
                node,
                f"scan estimates {node.rows:.3f} rows but NCARD is "
                f"{stats.ncard} — some selectivity escaped [0, 1]",
            )
        if isinstance(node.access, IndexAccess):
            index_stats = self._catalog.index_stats(node.access.index.name)
            if (
                node.access.index.unique
                and index_stats is not None
                and stats is not None
                and len(node.access.low) == len(node.access.index.key_positions)
                and node.access.low == node.access.high
                and node.access.low_inclusive
                and node.access.high_inclusive
                and not _leq(node.cost.pages, 2.0)
                and _close(node.cost.rsi, 1.0)
            ):
                # A fully-bound unique index is the paper's 1 + 1 + W case.
                self._flag(
                    "unique-path-cost",
                    node,
                    f"fully-bound unique index fetch costs {node.cost} "
                    "instead of the paper's 2 pages + W",
                )

    def _audit_nested_loop(self, node: NestedLoopJoinNode) -> None:
        outer, inner = node.outer, node.inner
        probes = max(0.0, outer.rows)
        expected_rsi = outer.cost.rsi + inner.cost.rsi * probes
        if not _close(node.cost.rsi, expected_rsi):
            self._flag(
                "nested-loop-inconsistent",
                node,
                f"RSI calls {node.cost.rsi:.3f} != C-outer + N * C-inner = "
                f"{expected_rsi:.3f}",
            )
        upper = outer.cost.pages + inner.cost.pages * probes
        if not _leq(outer.cost.pages, node.cost.pages) or not _leq(
            node.cost.pages, upper
        ):
            self._flag(
                "nested-loop-inconsistent",
                node,
                f"page fetches {node.cost.pages:.3f} outside "
                f"[C-outer, C-outer + N * C-inner] = "
                f"[{outer.cost.pages:.3f}, {upper:.3f}]",
            )

    def _audit_merge(self, node: MergeJoinNode) -> None:
        floor = node.outer.cost + node.inner.cost
        if not _leq(floor.pages, node.cost.pages) or not _leq(
            floor.rsi, node.cost.rsi
        ):
            self._flag(
                "merge-inconsistent",
                node,
                f"merge cost {node.cost} is below the sum of its ordered "
                f"inputs ({floor})",
            )

    def _audit_hash_join(self, node: HashJoinNode) -> None:
        """Re-derive the Table-2-style hash-join formula exactly.

        The build-side rule (smaller input builds) and the full cost
        formula — both the in-memory case and the grace spill term — are
        recomputed from the node's own inputs, so a plan that carries a
        hash join the formula would not have priced this way is flagged.
        """
        outer, inner = node.outer, node.inner
        probe_rows = max(0.0, outer.rows)
        build_rows = max(0.0, inner.rows)
        if not _leq(build_rows, probe_rows):
            self._flag(
                "hash-build-side",
                node,
                f"build side has {build_rows:.3f} rows but the probe side "
                f"only {probe_rows:.3f} — the smaller input must build",
            )
        expected_rsi = (
            outer.cost.rsi
            + inner.cost.rsi
            + HASH_TUPLE_FACTOR * (build_rows + probe_rows)
            + max(0.0, node.matches)
        )
        expected_pages = outer.cost.pages + inner.cost.pages
        if node.partitions > 1:
            inner_bytes = tuple_byte_width(inner.table)
            outer_bytes = sum(
                tuple_byte_width(scan.table)
                for scan in _scan_nodes(outer)
            )
            spill_pages = CostModel.temp_pages(
                build_rows, inner_bytes
            ) + CostModel.temp_pages(probe_rows, outer_bytes)
            expected_pages += 2.0 * spill_pages
            expected_rsi += 2.0 * (build_rows + probe_rows)
        if not _close(node.cost.rsi, expected_rsi):
            self._flag(
                "hash-inconsistent",
                node,
                f"RSI calls {node.cost.rsi:.3f} != C-outer + C-inner + "
                f"C-hash * (build + probe) + matches = {expected_rsi:.3f}",
            )
        if not _close(node.cost.pages, expected_pages):
            self._flag(
                "hash-inconsistent",
                node,
                f"page fetches {node.cost.pages:.3f} != re-derived "
                f"{expected_pages:.3f} (partitions={node.partitions})",
            )

    def _audit_sort(self, node: SortNode) -> None:
        if not _close(node.rows, node.child.rows):
            self._flag(
                "sort-changes-rows",
                node,
                f"sort emits {node.rows:.3f} rows but its input has "
                f"{node.child.rows:.3f}",
            )
        self._cost_monotone(node, node.child)

    def _audit_aggregate(self, node: AggregateNode) -> None:
        self._cost_monotone(node, node.child)
        if node.group_by:
            if not _leq(node.rows, node.child.rows):
                self._flag(
                    "groups-exceed-input",
                    node,
                    f"grouping estimates {node.rows:.3f} groups from "
                    f"{node.child.rows:.3f} input rows",
                )
        elif not _close(node.rows, 1.0):
            self._flag(
                "aggregate-cardinality",
                node,
                f"a whole-input aggregate returns one row, not {node.rows!r}",
            )

    def _shrinking(self, node: PlanNode, child: PlanNode) -> None:
        self._cost_monotone(node, child)
        if not _leq(node.rows, child.rows):
            self._flag(
                "rows-increase",
                node,
                f"{type(node).__name__} cannot increase rows: "
                f"{child.rows:.3f} -> {node.rows:.3f}",
            )

    def _preserving(self, node: PlanNode, child: PlanNode) -> None:
        self._cost_monotone(node, child)
        if not _close(node.rows, child.rows):
            self._flag(
                "rows-change",
                node,
                f"{type(node).__name__} must preserve rows: "
                f"{child.rows:.3f} -> {node.rows:.3f}",
            )

    def _cost_monotone(self, node: PlanNode, child: PlanNode) -> None:
        if not _leq(child.cost.pages, node.cost.pages) or not _leq(
            child.cost.rsi, node.cost.rsi
        ):
            self._flag(
                "cost-not-monotone",
                node,
                f"cost {node.cost} is below its input's cost {child.cost}",
            )

    def _flag(self, rule: str, node: PlanNode, message: str) -> None:
        self._violations.append(Violation(rule, node.label(), message))


def _scan_nodes(node: PlanNode):
    """Every ScanNode of a subtree, for composite tuple-width re-derivation."""
    if isinstance(node, ScanNode):
        yield node
        return
    for child in node.children():
        yield from _scan_nodes(child)


# ---------------------------------------------------------------------------
# catalog-wide cost model audit (TABLE 2 re-derivation)
# ---------------------------------------------------------------------------

#: Matched-selectivity samples for the TABLE 2 monotonicity check.
_SELECTIVITY_SAMPLES = (0.0, 0.1, 0.25, 0.5, 1.0)


def audit_cost_model(
    catalog: Catalog,
    w: float = DEFAULT_W,
    buffer_pages: int = 64,
) -> list[Violation]:
    """Re-derive TABLE 2 for every table/index and audit the statistics."""
    violations: list[Violation] = []
    model = CostModel(catalog, w, buffer_pages)
    _audit_cost_algebra(violations)
    for table in catalog.tables():
        where = f"table {table.name}"
        stats = catalog.relation_stats(table.name)
        if stats is not None:
            if stats.ncard < 0 or stats.tcard < 0:
                violations.append(
                    Violation(
                        "bad-statistics",
                        where,
                        f"negative cardinality: NCARD={stats.ncard} "
                        f"TCARD={stats.tcard}",
                    )
                )
            if not 0.0 < stats.fraction <= 1.0:
                violations.append(
                    Violation(
                        "bad-statistics",
                        where,
                        f"P(T)={stats.fraction!r} is not a fraction in (0, 1]",
                    )
                )
            if stats.ncard > 0 and stats.tcard > stats.ncard:
                violations.append(
                    Violation(
                        "bad-statistics",
                        where,
                        f"TCARD={stats.tcard} exceeds NCARD={stats.ncard}: "
                        "more occupied pages than tuples",
                    )
                )
            if stats.ncard == 0 and stats.tcard != 0:
                violations.append(
                    Violation(
                        "bad-statistics",
                        where,
                        f"empty relation still reports TCARD={stats.tcard}",
                    )
                )
        # Segment scan: TCARD/P + W * RSICARD, re-derived.
        scan = model.segment_scan_cost(table, rsicard=model.ncard(table))
        expected_pages = model.tcard(table) / model.fraction(table)
        if not _close(scan.pages, expected_pages) or scan.pages < 0.0:
            violations.append(
                Violation(
                    "table2-mismatch",
                    where,
                    f"segment scan pages {scan.pages:.3f} != TCARD/P = "
                    f"{expected_pages:.3f}",
                )
            )
        for index in catalog.indexes_on(table.name):
            _audit_index_formulas(model, catalog, table, index, violations)
    return violations


def _audit_index_formulas(
    model: CostModel, catalog: Catalog, table, index, violations: list[Violation]
) -> None:
    where = f"index {index.name}"
    stats = catalog.index_stats(index.name)
    relation = catalog.relation_stats(table.name)
    if stats is not None:
        if stats.nindx < 0 or stats.icard < 0:
            violations.append(
                Violation(
                    "bad-statistics",
                    where,
                    f"negative index statistics: NINDX={stats.nindx} "
                    f"ICARD={stats.icard}",
                )
            )
        if relation is not None and stats.icard > max(1, relation.ncard):
            violations.append(
                Violation(
                    "bad-statistics",
                    where,
                    f"ICARD={stats.icard} exceeds NCARD={relation.ncard}: "
                    "more distinct keys than tuples",
                )
            )
        if stats.prefix_icards:
            # A longer prefix can only distinguish more keys, and the
            # full-width prefix is ICARD itself by definition.
            if stats.prefix_icards[-1] != stats.icard:
                violations.append(
                    Violation(
                        "bad-statistics",
                        where,
                        f"full prefix cardinality {stats.prefix_icards[-1]} "
                        f"!= ICARD={stats.icard}",
                    )
                )
            if any(
                narrow > wide
                for narrow, wide in zip(
                    stats.prefix_icards, stats.prefix_icards[1:]
                )
            ):
                violations.append(
                    Violation(
                        "bad-statistics",
                        where,
                        f"prefix cardinalities {list(stats.prefix_icards)} "
                        "are not nondecreasing in prefix length",
                    )
                )
            if len(stats.prefix_icards) != len(index.column_names):
                violations.append(
                    Violation(
                        "bad-statistics",
                        where,
                        f"{len(stats.prefix_icards)} prefix cardinalities "
                        f"for a {len(index.column_names)}-column key",
                    )
                )
    unique = model.unique_index_cost()
    if not _close(unique.pages, 2.0) or not _close(unique.rsi, 1.0):
        violations.append(
            Violation(
                "table2-mismatch",
                where,
                f"unique index cost {unique} != the paper's 1 + 1 + W",
            )
        )
    nindx = model.nindx(index)
    tcard, ncard = model.tcard(table), model.ncard(table)
    fits = tcard + nindx <= model.buffer_pages
    previous = None
    for fraction in _SELECTIVITY_SAMPLES:
        cost = model.matching_index_cost(index, table, fraction, rsicard=0.0)
        if index.clustered or fits:
            expected = fraction * (nindx + tcard)
        else:
            expected = fraction * (nindx + ncard)
        if not _close(cost.pages, expected):
            violations.append(
                Violation(
                    "table2-mismatch",
                    where,
                    f"matching index pages {cost.pages:.3f} at F={fraction} "
                    f"!= re-derived {expected:.3f}",
                )
            )
        clustered_form = fraction * (nindx + tcard)
        nonclustered_form = fraction * (nindx + ncard)
        if not _leq(clustered_form, nonclustered_form):
            violations.append(
                Violation(
                    "clustered-dominance",
                    where,
                    f"clustered formula {clustered_form:.3f} exceeds "
                    f"non-clustered {nonclustered_form:.3f} at F={fraction}",
                )
            )
        if cost.pages < 0.0:
            violations.append(
                Violation(
                    "negative-estimate",
                    where,
                    f"matching index cost is negative at F={fraction}",
                )
            )
        if previous is not None and not _leq(previous, cost.pages):
            violations.append(
                Violation(
                    "table2-not-monotone",
                    where,
                    f"matching index pages decreased from {previous:.3f} "
                    f"as F grew to {fraction}",
                )
            )
        previous = cost.pages
    non_matching = model.non_matching_index_cost(index, table, rsicard=0.0)
    full_matching = model.matching_index_cost(index, table, 1.0, rsicard=0.0)
    if not _close(non_matching.pages, full_matching.pages):
        violations.append(
            Violation(
                "table2-mismatch",
                where,
                f"non-matching index pages {non_matching.pages:.3f} != the "
                f"matching formula at F=1 ({full_matching.pages:.3f})",
            )
        )


def _audit_cost_algebra(violations: list[Violation]) -> None:
    """Spot-check the Cost value type's algebraic invariants."""
    samples = (
        Cost(0.0, 0.0),
        Cost(1.5, 3.0),
        Cost(10.0, 0.5),
        Cost(1000.0, 250000.0),
    )
    for a in samples:
        for b in samples:
            total = a + b
            if not _close(total.pages, a.pages + b.pages) or not _close(
                total.rsi, a.rsi + b.rsi
            ):
                violations.append(
                    Violation(
                        "cost-algebra",
                        "Cost.__add__",
                        f"{a} + {b} produced {total}",
                    )
                )
            if not _leq(a.pages, total.pages) or not _leq(a.rsi, total.rsi):
                violations.append(
                    Violation(
                        "cost-algebra",
                        "Cost.__add__",
                        f"addition of {b} shrank {a} to {total}",
                    )
                )
        for factor in (0.0, 0.5, 2.0):
            scaled = a.scaled(factor)
            if not _close(scaled.pages, a.pages * factor) or not _close(
                scaled.rsi, a.rsi * factor
            ):
                violations.append(
                    Violation(
                        "cost-algebra",
                        "Cost.scaled",
                        f"{a}.scaled({factor}) produced {scaled}",
                    )
                )
        for w in (0.0, DEFAULT_W, 1.0):
            if a.total(w) < 0.0:
                violations.append(
                    Violation(
                        "cost-algebra",
                        "Cost.total",
                        f"{a}.total({w}) is negative",
                    )
                )


# ---------------------------------------------------------------------------
# DP search prune audit
# ---------------------------------------------------------------------------


def audit_search_stats(stats) -> list[Violation]:
    """Verify recorded DP prunes: no pruned plan beat its survivor.

    ``stats`` is a :class:`~repro.optimizer.joins.SearchStats` whose
    ``pruned`` / ``survivor_totals`` fields were filled by a search run
    with ``record_prunes=True`` (the ``REPRO_CHECK=1`` flag arranges
    this).  A pruned candidate cheaper than the surviving entry of its
    (relation set, order class) would mean the DP discarded the optimum.
    """
    violations: list[Violation] = []
    survivors = getattr(stats, "survivor_totals", None)
    pruned = getattr(stats, "pruned", None)
    if not pruned:
        return violations
    if survivors is None:
        survivors = {}
    for record in pruned:
        key = (record.mask, record.order_key)
        survivor = survivors.get(key)
        # Prune records carry bitmask subset keys; translate them back to
        # alias names only here, at the reporting boundary.
        where = "{" + ", ".join(sorted(stats.aliases_of(record.mask))) + "}"
        if survivor is None:
            violations.append(
                Violation(
                    "prune-without-survivor",
                    where,
                    f"a candidate with order {record.order_key} was pruned "
                    "but no solution survived in its equivalence class",
                )
            )
        elif not _leq(survivor, record.total):
            violations.append(
                Violation(
                    "inadmissible-prune",
                    where,
                    f"pruned candidate cost {record.total:.4f} beats the "
                    f"surviving solution's {survivor:.4f} for order "
                    f"{record.order_key}",
                )
            )
    return violations
