"""Moderate-scale smoke tests: tens of thousands of tuples stay correct."""

import random

import pytest

from repro import Database
from repro.workloads import load_rows

ROWS = 8_000


@pytest.fixture(scope="module")
def big():
    db = Database(buffer_pages=32)
    db.execute(
        "CREATE TABLE BIG (ID INTEGER, GRP INTEGER, VAL FLOAT, TAG VARCHAR(12))"
    )
    rng = random.Random(123)
    load_rows(
        db,
        "BIG",
        [
            (i, rng.randrange(200), rng.uniform(0, 1000), f"tag{i % 97}")
            for i in range(ROWS)
        ],
    )
    db.execute("CREATE UNIQUE INDEX BIG_ID ON BIG (ID)")
    db.execute("CREATE INDEX BIG_GRP ON BIG (GRP)")
    db.execute("UPDATE STATISTICS")
    return db


class TestScale:
    def test_stats(self, big):
        stats = big.catalog.relation_stats("BIG")
        assert stats.ncard == ROWS
        assert stats.tcard > 50
        assert big.catalog.index_stats("BIG_ID").icard == ROWS
        assert big.catalog.index_stats("BIG_GRP").icard == 200

    def test_point_lookups(self, big):
        for key in (0, ROWS // 2, ROWS - 1):
            result = big.execute(f"SELECT GRP FROM BIG WHERE ID = {key}")
            assert len(result.rows) == 1

    def test_group_count_totals(self, big):
        result = big.execute("SELECT GRP, COUNT(*) FROM BIG GROUP BY GRP")
        assert sum(count for __, count in result.rows) == ROWS
        assert len(result.rows) == 200

    def test_range_count(self, big):
        count = big.execute(
            "SELECT COUNT(*) FROM BIG WHERE ID BETWEEN 3000 AND 3999"
        ).scalar()
        assert count == 1000

    def test_btree_depth_is_logarithmic(self, big):
        btree = big.storage.btree("BIG_ID")
        assert btree.page_count() < ROWS // 50

    def test_order_by_id_sorted_output(self, big):
        # At this scale a full traversal of the non-clustered index costs
        # NINDX + NCARD pages, so the optimizer correctly prefers an
        # explicit sort; either way the output must be ordered.
        result = big.execute("SELECT ID FROM BIG ORDER BY ID")
        ids = [row[0] for row in result.rows]
        assert ids == list(range(ROWS))

    def test_join_against_small_dimension(self, big):
        big.execute("CREATE TABLE DIM (GRP INTEGER, NAME VARCHAR(8))")
        load_rows(big, "DIM", [(g, f"g{g}") for g in range(200)])
        big.execute("UPDATE STATISTICS DIM")
        count = big.execute(
            "SELECT COUNT(*) FROM BIG, DIM WHERE BIG.GRP = DIM.GRP"
        ).scalar()
        assert count == ROWS
