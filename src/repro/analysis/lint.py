"""Project-specific lint: an ``ast``-based pass over ``src/repro``.

Generic linters cannot know this project's rules, so this pass enforces
them directly on the parsed source:

- **no-float-eq** — cost-sensitive modules (``optimizer/``, ``analysis/``)
  may not compare float-valued expressions with ``==`` / ``!=``; cost and
  cardinality comparisons must use tolerant helpers or inequalities.
- **mutable-default** — no function may use a mutable default argument
  (``[]``, ``{}``, ``set()`` and friends) anywhere in the package.
- **counter-mutation** — the cost counters in :mod:`repro.rss.counters`
  (``page_fetches``, ``rsi_calls``, ``buffer_hits``) may only be assigned
  or incremented inside ``rss/``; everyone else observes them through
  snapshots or ``reset()``.
- **walker-not-exhaustive** — every registered plan walker must dispatch
  with ``isinstance`` on *every* :class:`~repro.optimizer.plan.PlanNode`
  subclass, so adding a plan node type cannot silently fall through.
- **joinsearch-hot-path** — the DP join search keys subsets by interned
  integer bitmasks and precomputes its catalog statistics: no method of
  ``JoinSearch`` outside ``__init__`` may build a ``frozenset`` or call a
  catalog statistics lookup (``relation_stats``, ``index_stats``,
  ``indexes_on``, ``index_on_column``).  This pins the hot-path overhaul
  so a future change cannot quietly reintroduce per-extension hashing of
  alias sets or repeated catalog dictionary probes.
- **no-swallowed-exceptions** — the storage layer (``rss/``) guarantees
  statement atomicity, which dies silently if an error is swallowed on
  the way up: no bare ``except``, no ``except Exception`` /
  ``BaseException`` handler that fails to re-raise, and no handler of any
  type whose body is only ``pass``.
- **executor-hot-path** — the execution engine compiles expressions,
  SARG matchers, and decode plans once per plan/scan open; per-tuple
  loops must run only the compiled artifacts.  Inside ``for``/``while``
  bodies of ``engine/operators.py``, ``engine/fuse.py``,
  ``engine/temp.py``, ``engine/external_sort.py``, and
  ``rss/scan.py`` there may be no call to ``evaluate`` /
  ``predicate_holds`` / ``decode_tuple``, no ``EvalEnv`` construction,
  and no ``isinstance`` dispatch (``assert`` statements are exempt —
  they exist for type narrowing).  Hash-join build and probe loops obey
  the same discipline: ``build_hash_table`` may never run inside a loop
  (the build side is bucketed once per statement and shared across
  batches and probe workers).  Fused drivers additionally may not
  hand off to a per-tuple generator (``iterate``, ``fused_rows``,
  ``hash_join_rows`` or any ``_iter_*`` operator) from inside a loop: a
  chain either fuses a stage into the driver's batch loop or breaks at a
  declared pipeline breaker.  The
  closures built by :mod:`repro.engine.compile` are themselves per-row
  code, so nested functions there may not call ``isinstance`` or build
  ``EvalEnv`` either (canonical values use ``type(x) is ...`` checks
  instead).

The subclass list is discovered by parsing ``optimizer/plan.py``, never
hard-coded, so the lint stays correct as the plan algebra grows.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .plan_check import Violation

#: Modules whose float values must never be compared with ``==``.
_COST_MODULE_PREFIXES = ("optimizer/", "analysis/")

#: Attribute names that are float-valued throughout the codebase.
_FLOAT_ATTRS = frozenset(
    {
        "pages",
        "rsi",
        "rows",
        "buffer_claim",
        "selectivity",
        "fraction",
        "qcard",
        "nested_eval_total",
        "eval_total",
        "distinct_total",
    }
)

#: Calls whose results are float-valued costs.
_FLOAT_METHODS = frozenset({"total", "scaled", "weighted_cost"})

#: Counter fields that only ``rss/`` may mutate.
_COUNTER_FIELDS = frozenset({"page_fetches", "rsi_calls", "buffer_hits"})

#: Every plan walker: (module path relative to src/repro, function name).
#: Each must dispatch on every PlanNode subclass.
_PLAN_WALKERS = (
    ("engine/operators.py", "iterate"),
    ("engine/fuse.py", "_build_fused"),
    ("optimizer/explain.py", "plan_summary"),
    ("analysis/plan_check.py", "_walk"),
    ("analysis/cost_audit.py", "_audit_node"),
)


def package_root() -> Path:
    """The ``src/repro`` directory this module lives in."""
    return Path(__file__).resolve().parent.parent


def lint_repo(root: Path | None = None) -> list[Violation]:
    """Run every lint rule over the package; returns all violations."""
    root = package_root() if root is None else root
    violations: list[Violation] = []
    trees: dict[str, ast.Module] = {}
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as error:
            violations.append(
                Violation("syntax-error", f"{relative}:{error.lineno}", str(error))
            )
            continue
        trees[relative] = tree
        _check_mutable_defaults(relative, tree, violations)
        if relative.startswith(_COST_MODULE_PREFIXES):
            _check_float_eq(relative, tree, violations)
        if not relative.startswith("rss/"):
            _check_counter_mutation(relative, tree, violations)
        else:
            _check_swallowed_exceptions(relative, tree, violations)
        if relative == "optimizer/joins.py":
            _check_joinsearch_hot_path(relative, tree, violations)
        if relative in _EXECUTOR_HOT_PATH_MODULES:
            _check_executor_hot_path(relative, tree, violations)
        if relative == "engine/compile.py":
            _check_compiled_closures(relative, tree, violations)
    _check_walkers(trees, violations, root)
    return violations


# ---------------------------------------------------------------------------
# rule: mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_CALLS:
            return True
    return False


def _check_mutable_defaults(
    relative: str, tree: ast.Module, violations: list[Violation]
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                violations.append(
                    Violation(
                        "mutable-default",
                        f"{relative}:{default.lineno}",
                        f"function {node.name!r} has a mutable default "
                        "argument; use None and create it in the body",
                    )
                )


# ---------------------------------------------------------------------------
# rule: no float == in cost code
# ---------------------------------------------------------------------------


def _is_floatish(node: ast.expr) -> bool:
    """Whether an expression is float-valued by this project's conventions."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT_ATTRS
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if isinstance(func, ast.Attribute) and func.attr in _FLOAT_METHODS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True  # true division always produces a float
    if isinstance(node, (ast.BinOp, ast.UnaryOp)):
        operands = (
            [node.left, node.right]
            if isinstance(node, ast.BinOp)
            else [node.operand]
        )
        return any(_is_floatish(operand) for operand in operands)
    return False


def _check_float_eq(
    relative: str, tree: ast.Module, violations: list[Violation]
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_floatish(left) or _is_floatish(right):
                violations.append(
                    Violation(
                        "float-eq",
                        f"{relative}:{node.lineno}",
                        "float-valued expressions compared with == / != in "
                        "cost code; use a tolerant comparison",
                    )
                )


# ---------------------------------------------------------------------------
# rule: counters mutated only inside rss/
# ---------------------------------------------------------------------------


def _check_counter_mutation(
    relative: str, tree: ast.Module, violations: list[Violation]
) -> None:
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _COUNTER_FIELDS
                # `self.page_fetches = 0` inside counters.py itself is the
                # dataclass definition; everywhere else it is a mutation.
                and not (
                    isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and relative == "rss/counters.py"
                )
            ):
                violations.append(
                    Violation(
                        "counter-mutation",
                        f"{relative}:{node.lineno}",
                        f"cost counter {target.attr!r} mutated outside rss/;"
                        " only the storage layer may count cost events",
                    )
                )


# ---------------------------------------------------------------------------
# rule: the storage layer never swallows exceptions
# ---------------------------------------------------------------------------

#: Exception names so broad that catching them without re-raising hides
#: injected faults and real corruption alike.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether a handler body contains a ``raise`` of its own.

    Nested function definitions are skipped — a ``raise`` inside a closure
    defined in the handler does not re-raise the caught exception.
    """
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _exception_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return []
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: list[str] = []
    for node in types:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _check_swallowed_exceptions(
    relative: str, tree: ast.Module, violations: list[Violation]
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        where = f"{relative}:{node.lineno}"
        if node.type is None:
            violations.append(
                Violation(
                    "no-swallowed-exceptions",
                    where,
                    "bare except in the storage layer; name the exception "
                    "and re-raise what you cannot handle",
                )
            )
            continue
        broad = [
            name
            for name in _exception_names(node)
            if name in _BROAD_EXCEPTIONS
        ]
        if broad and not _handler_reraises(node):
            violations.append(
                Violation(
                    "no-swallowed-exceptions",
                    where,
                    f"except {broad[0]} without re-raising swallows "
                    "injected faults and corruption; handle a narrower "
                    "type or re-raise",
                )
            )
        elif all(isinstance(stmt, ast.Pass) for stmt in node.body):
            violations.append(
                Violation(
                    "no-swallowed-exceptions",
                    where,
                    "pass-only exception handler silently drops a storage "
                    "error",
                )
            )


# ---------------------------------------------------------------------------
# rule: the join-search hot path stays on bitmasks and memoized stats
# ---------------------------------------------------------------------------

#: Catalog statistics lookups that must not run per-extension; the search
#: fetches them once at construction and memoizes.
_CATALOG_STAT_METHODS = frozenset(
    {"relation_stats", "index_stats", "indexes_on", "index_on_column"}
)

#: JoinSearch methods that run before the DP loop and may do setup work.
_JOINSEARCH_SETUP_METHODS = frozenset({"__init__"})


def _check_joinsearch_hot_path(
    relative: str, tree: ast.Module, violations: list[Violation]
) -> None:
    for klass in tree.body:
        if not (isinstance(klass, ast.ClassDef) and klass.name == "JoinSearch"):
            continue
        for func in klass.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name in _JOINSEARCH_SETUP_METHODS:
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                if isinstance(callee, ast.Name) and callee.id == "frozenset":
                    violations.append(
                        Violation(
                            "joinsearch-hot-path",
                            f"{relative}:{node.lineno}",
                            f"frozenset built in JoinSearch.{func.name}; "
                            "subset keys are interned bitmasks — translate "
                            "to alias sets only at the audit boundary",
                        )
                    )
                elif (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in _CATALOG_STAT_METHODS
                ):
                    violations.append(
                        Violation(
                            "joinsearch-hot-path",
                            f"{relative}:{node.lineno}",
                            f"catalog lookup {callee.attr!r} in "
                            f"JoinSearch.{func.name}; fetch statistics once "
                            "at construction and memoize",
                        )
                    )


# ---------------------------------------------------------------------------
# rule: the execution engine's per-tuple loops run only compiled artifacts
# ---------------------------------------------------------------------------

#: Modules whose ``for``/``while`` bodies are per-tuple hot paths.
_EXECUTOR_HOT_PATH_MODULES = frozenset(
    {
        "engine/operators.py",
        "engine/fuse.py",
        "engine/parallel.py",
        "engine/scheduler.py",
        "engine/temp.py",
        "engine/external_sort.py",
        "rss/scan.py",
    }
)

#: Interpreter entry points that must only run at compile/open time.
_HOT_PATH_BANNED_CALLS = frozenset({"evaluate", "predicate_holds", "decode_tuple"})

#: Per-tuple generator entry points a fused driver loop must never call:
#: fusion exists to eliminate the per-tuple frame hand-off, so a chain
#: either inlines a stage or breaks at a declared pipeline breaker.
_FUSED_HANDOFF_CALLS = frozenset({"iterate", "fused_rows", "hash_join_rows"})


def _walk_skipping_asserts(node: ast.AST):
    """``ast.walk`` over a statement, pruning ``assert`` subtrees.

    ``assert isinstance(...)`` narrows types for mypy and vanishes under
    ``-O``; it is not dispatch, so the hot-path rules ignore it.
    """
    stack: list[ast.AST] = [node]
    while stack:
        child = stack.pop()
        if isinstance(child, ast.Assert):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _call_name(node: ast.Call) -> str | None:
    callee = node.func
    if isinstance(callee, ast.Name):
        return callee.id
    if isinstance(callee, ast.Attribute):
        return callee.attr
    return None


def _check_executor_hot_path(
    relative: str, tree: ast.Module, violations: list[Violation]
) -> None:
    flagged: set[int] = set()  # nested loops are walked repeatedly
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for statement in loop.body + loop.orelse:
            for node in _walk_skipping_asserts(statement):
                if not isinstance(node, ast.Call) or node.lineno in flagged:
                    continue
                name = _call_name(node)
                if name in _HOT_PATH_BANNED_CALLS:
                    flagged.add(node.lineno)
                    violations.append(
                        Violation(
                            "executor-hot-path",
                            f"{relative}:{node.lineno}",
                            f"interpreter entry point {name!r} called inside "
                            "a per-tuple loop; compile it once per plan or "
                            "scan open instead",
                        )
                    )
                elif name == "EvalEnv":
                    flagged.add(node.lineno)
                    violations.append(
                        Violation(
                            "executor-hot-path",
                            f"{relative}:{node.lineno}",
                            "EvalEnv constructed inside a per-tuple loop; "
                            "build one environment per open and mutate "
                            "its row instead",
                        )
                    )
                elif name == "isinstance":
                    flagged.add(node.lineno)
                    violations.append(
                        Violation(
                            "executor-hot-path",
                            f"{relative}:{node.lineno}",
                            "isinstance dispatch inside a per-tuple loop; "
                            "resolve the variant at compile/open time",
                        )
                    )
                elif name == "build_hash_table":
                    flagged.add(node.lineno)
                    violations.append(
                        Violation(
                            "executor-hot-path",
                            f"{relative}:{node.lineno}",
                            "hash-join build inside a loop; bucket the "
                            "build side once per statement and share the "
                            "table across batches and probe workers",
                        )
                    )
                elif relative == "engine/fuse.py" and name is not None and (
                    name in _FUSED_HANDOFF_CALLS or name.startswith("_iter_")
                ):
                    flagged.add(node.lineno)
                    violations.append(
                        Violation(
                            "executor-hot-path",
                            f"{relative}:{node.lineno}",
                            f"per-tuple generator hand-off {name!r} inside "
                            "a fused driver loop; fuse the stage into the "
                            "batch loop or break the chain at a pipeline "
                            "breaker",
                        )
                    )


def _check_compiled_closures(
    relative: str, tree: ast.Module, violations: list[Violation]
) -> None:
    """Nested functions in ``engine/compile.py`` are per-row closures."""
    toplevel_functions: set[ast.AST] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            toplevel_functions.add(node)
    flagged: set[int] = set()
    for outer in toplevel_functions:
        for inner in ast.walk(outer):
            if inner is outer or not isinstance(
                inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            for node in _walk_skipping_asserts(inner):
                if not isinstance(node, ast.Call) or node.lineno in flagged:
                    continue
                name = _call_name(node)
                if name in ("isinstance", "EvalEnv"):
                    flagged.add(node.lineno)
                    violations.append(
                        Violation(
                            "executor-hot-path",
                            f"{relative}:{node.lineno}",
                            f"{name} used inside a compiled closure; "
                            "closures run per row — use type(x) checks on "
                            "canonical values and reuse environments",
                        )
                    )


# ---------------------------------------------------------------------------
# rule: exhaustive plan-node dispatch
# ---------------------------------------------------------------------------


def plan_node_subclasses(root: Path | None = None) -> list[str]:
    """PlanNode subclass names, discovered by parsing ``optimizer/plan.py``."""
    root = package_root() if root is None else root
    tree = ast.parse((root / "optimizer" / "plan.py").read_text(encoding="utf-8"))
    names: list[str] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and any(
            isinstance(base, ast.Name) and base.id == "PlanNode"
            for base in node.bases
        ):
            names.append(node.name)
    return names


def _isinstance_targets(func: ast.AST) -> set[str]:
    """Names used as the class argument of ``isinstance`` calls in a body."""
    targets: set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        classes = node.args[1]
        elements = (
            list(classes.elts) if isinstance(classes, ast.Tuple) else [classes]
        )
        for element in elements:
            if isinstance(element, ast.Name):
                targets.add(element.id)
            elif isinstance(element, ast.Attribute):
                targets.add(element.attr)
    return targets


def _find_function(tree: ast.Module, name: str) -> ast.AST | None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


def _check_walkers(
    trees: dict[str, ast.Module],
    violations: list[Violation],
    root: Path | None = None,
) -> None:
    try:
        subclasses = plan_node_subclasses(root)
    except (OSError, SyntaxError) as error:
        violations.append(
            Violation("walker-not-exhaustive", "optimizer/plan.py", str(error))
        )
        return
    for relative, function_name in _PLAN_WALKERS:
        where = f"{relative}:{function_name}"
        tree = trees.get(relative)
        if tree is None:
            violations.append(
                Violation(
                    "walker-not-exhaustive",
                    where,
                    "registered plan walker module is missing",
                )
            )
            continue
        func = _find_function(tree, function_name)
        if func is None:
            violations.append(
                Violation(
                    "walker-not-exhaustive",
                    where,
                    "registered plan walker function is missing",
                )
            )
            continue
        handled = _isinstance_targets(func)
        missing = [name for name in subclasses if name not in handled]
        if missing:
            violations.append(
                Violation(
                    "walker-not-exhaustive",
                    where,
                    "plan walker does not dispatch on "
                    + ", ".join(missing),
                )
            )
