"""Tests for the multi-pass external merge sort (§5: "several passes")."""

import random

import pytest

from repro import Database
from repro.datatypes import INTEGER, varchar
from repro.engine.external_sort import ExternalSorter
from repro.engine.rows import Row
from repro.optimizer.bound import BoundColumn
from repro.rss import StorageEngine
from repro.sorting import merge_fan_in, merge_passes, temp_rows_per_page, workspace_rows
from repro.workloads import load_rows


def key_column(position=0):
    return BoundColumn("T", position, f"C{position}", "T", INTEGER, 1)


def make_rows(count, seed=0):
    rng = random.Random(seed)
    return [Row(values={"T": (rng.randrange(10_000), i)}) for i in range(count)]


def sorter_for(storage, memory_rows, fan_in=None):
    return ExternalSorter(
        storage,
        [("T", [INTEGER, INTEGER])],
        [(key_column(), False)],
        memory_rows=memory_rows,
        fan_in=fan_in,
    )


class TestSortingMath:
    def test_rows_per_page(self):
        assert temp_rows_per_page(row_bytes=40) == (4096 - 8) // 44

    def test_workspace_rows(self):
        assert workspace_rows(10, 40) == 10 * temp_rows_per_page(40)

    def test_fan_in_minimum(self):
        assert merge_fan_in(1) == 2
        assert merge_fan_in(10) == 9

    def test_pass_counts(self):
        # One run: no merge passes.
        assert merge_passes(10, buffer_pages=64, row_bytes=40) == 0
        # Force tiny workspace via huge rows.
        per = workspace_rows(2, 40)
        assert merge_passes(per * 3, buffer_pages=2, row_bytes=40) >= 1

    def test_zero_rows(self):
        assert merge_passes(0, 4, 40) == 0


class TestExternalSorter:
    def test_in_memory_path(self):
        storage = StorageEngine()
        sorter = sorter_for(storage, memory_rows=1000)
        rows = make_rows(100)
        output = [r.values["T"][0] for r in sorter.sort(iter(rows))]
        assert output == sorted(r.values["T"][0] for r in rows)
        assert sorter.initial_runs == 1
        assert sorter.merge_passes == 0

    def test_multi_run_single_pass(self):
        storage = StorageEngine()
        sorter = sorter_for(storage, memory_rows=50, fan_in=8)
        rows = make_rows(300)
        output = [r.values["T"][0] for r in sorter.sort(iter(rows))]
        assert output == sorted(r.values["T"][0] for r in rows)
        assert sorter.initial_runs == 6
        assert sorter.merge_passes == 1

    def test_multi_pass(self):
        storage = StorageEngine()
        sorter = sorter_for(storage, memory_rows=20, fan_in=2)
        rows = make_rows(300)
        output = [r.values["T"][0] for r in sorter.sort(iter(rows))]
        assert output == sorted(r.values["T"][0] for r in rows)
        assert sorter.initial_runs == 15
        assert sorter.merge_passes == 4  # ceil(log2(15))

    def test_stability_within_equal_keys(self):
        storage = StorageEngine()
        sorter = sorter_for(storage, memory_rows=1000)
        rows = [Row(values={"T": (1, i)}) for i in range(50)]
        output = [r.values["T"][1] for r in sorter.sort(iter(rows))]
        assert output == list(range(50))

    def test_empty_input(self):
        storage = StorageEngine()
        sorter = sorter_for(storage, memory_rows=10)
        assert list(sorter.sort(iter([]))) == []

    def test_temp_pages_freed(self):
        storage = StorageEngine()
        sorter = sorter_for(storage, memory_rows=20, fan_in=2)
        before = len(storage.store)
        list(sorter.sort(iter(make_rows(200))))
        assert len(storage.store) == before

    def test_descending_keys(self):
        storage = StorageEngine()
        sorter = ExternalSorter(
            storage,
            [("T", [INTEGER, INTEGER])],
            [(key_column(), True)],
            memory_rows=30,
            fan_in=3,
        )
        rows = make_rows(200)
        output = [r.values["T"][0] for r in sorter.sort(iter(rows))]
        assert output == sorted(
            (r.values["T"][0] for r in rows), reverse=True
        )

    def test_rejects_tiny_workspace(self):
        with pytest.raises(ValueError):
            sorter_for(StorageEngine(), memory_rows=1)


class TestEndToEndMultiPass:
    def test_sorted_query_with_tiny_buffer(self):
        """A big ORDER BY on a 2-page buffer goes multi-pass and stays right."""
        db = Database(buffer_pages=2)
        db.execute("CREATE TABLE S (K INTEGER, PAD VARCHAR(80))")
        rng = random.Random(5)
        load_rows(
            db, "S", [(rng.randrange(100_000), "x" * 72) for __ in range(3000)]
        )
        db.execute("UPDATE STATISTICS")
        result = db.execute("SELECT K FROM S ORDER BY K")
        values = [row[0] for row in result.rows]
        assert values == sorted(values)
        assert len(values) == 3000

    def test_measured_sort_cost_tracks_pass_prediction(self):
        """Predicted pass-counted sort pages track the measured fetches."""
        db = Database(buffer_pages=2)
        db.execute("CREATE TABLE S (K INTEGER, PAD VARCHAR(80))")
        rng = random.Random(5)
        load_rows(
            db, "S", [(rng.randrange(100_000), "x" * 72) for __ in range(3000)]
        )
        db.execute("UPDATE STATISTICS")
        planned = db.plan("SELECT K FROM S ORDER BY K")
        db.cold_cache()
        db.executor().execute(planned)
        measured = db.counters.snapshot()
        # Both sides count the same run/merge traffic, within slack for
        # fractional pages and buffer re-reads.
        assert measured.page_fetches == pytest.approx(
            planned.estimated_cost.pages, rel=0.5
        )
        assert measured.rsi_calls == pytest.approx(
            planned.estimated_cost.rsi, rel=0.5
        )
