"""The system catalog: tables, indexes, and their statistics.

The OPTIMIZER's catalog-lookup phase (Section 2) resolves table and column
names here and retrieves the statistics and available access paths used in
access path selection.
"""

from __future__ import annotations

from ..datatypes import DataType
from ..errors import CatalogError, SemanticError
from .schema import Column, IndexDef, TableDef
from .statistics import IndexStats, RelationStats


class Catalog:
    """In-memory catalog of table and index definitions plus statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, TableDef] = {}
        self._indexes: dict[str, IndexDef] = {}
        self._indexes_by_table: dict[str, list[str]] = {}
        self._relation_stats: dict[str, RelationStats] = {}
        self._index_stats: dict[str, IndexStats] = {}
        self._next_relation_id = 1
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter, bumped by every schema or statistics change.

        Caches built over catalog lookups (selectivity factors, per-table
        index lists, cost-model statistics) key their validity on this:
        ``UPDATE STATISTICS``, CREATE/DROP TABLE and CREATE/DROP INDEX all
        advance it, so a stale cache is detected by one int compare.
        """
        return self._version

    # -- tables ----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: list[tuple[str, DataType]],
        segment_name: str | None = None,
    ) -> TableDef:
        """Register a new table; names are case-insensitive (stored upper)."""
        key = name.upper()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = TableDef(
            key,
            [Column(column_name.upper(), datatype) for column_name, datatype in columns],
            self._next_relation_id,
            (segment_name or key).upper(),
        )
        self._next_relation_id += 1
        self._version += 1
        self._tables[key] = table
        self._indexes_by_table[key] = []
        return table

    def drop_table(self, name: str) -> TableDef:
        """Remove a table, its indexes, and its statistics."""
        key = name.upper()
        table = self.table(key)
        for index_name in list(self._indexes_by_table[key]):
            self.drop_index(index_name)
        del self._tables[key]
        del self._indexes_by_table[key]
        self._relation_stats.pop(key, None)
        self._version += 1
        return table

    def table(self, name: str) -> TableDef:
        """Look a table up by name; raises SemanticError when unknown."""
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise SemanticError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table of this name exists."""
        return name.upper() in self._tables

    def tables(self) -> list[TableDef]:
        """Every table definition, in creation order."""
        return list(self._tables.values())

    # -- indexes ------------------------------------------------------------------

    def create_index(
        self,
        name: str,
        table_name: str,
        column_names: list[str],
        unique: bool = False,
        clustered: bool = False,
    ) -> IndexDef:
        """Register an index; at most one clustered index per table."""
        key = name.upper()
        if key in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        table = self.table(table_name)
        positions = [table.column_position(column.upper()) for column in column_names]
        if clustered and any(
            existing.clustered for existing in self.indexes_on(table.name)
        ):
            raise CatalogError(
                f"table {table.name!r} already has a clustered index"
            )
        index = IndexDef(
            name=key,
            table_name=table.name,
            column_names=[column.upper() for column in column_names],
            unique=unique,
            clustered=clustered,
            key_positions=positions,
        )
        self._indexes[key] = index
        self._indexes_by_table[table.name].append(key)
        self._version += 1
        return index

    def drop_index(self, name: str) -> IndexDef:
        """Remove an index definition and its statistics."""
        key = name.upper()
        try:
            index = self._indexes.pop(key)
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None
        self._indexes_by_table[index.table_name].remove(key)
        self._index_stats.pop(key, None)
        self._version += 1
        return index

    def add_index(self, index: IndexDef) -> None:
        """Re-register a previously dropped definition (DDL rollback)."""
        key = index.name.upper()
        if key in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        self._indexes[key] = index
        self._indexes_by_table[index.table_name].append(key)
        self._version += 1

    def index(self, name: str) -> IndexDef:
        """Look an index up by name; raises CatalogError when unknown."""
        try:
            return self._indexes[name.upper()]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    def indexes_on(self, table_name: str) -> list[IndexDef]:
        """All indexes defined on a table, in creation order."""
        return [
            self._indexes[index_name]
            for index_name in self._indexes_by_table.get(table_name.upper(), [])
        ]

    def index_on_column(self, table_name: str, column_name: str) -> IndexDef | None:
        """An index whose *first* key column is ``column_name``, if any.

        Table 1's selectivity formulas consult "the index on column"; when
        several qualify, the one with statistics (or the first) is returned.
        """
        for index in self.indexes_on(table_name):
            if index.column_names[0] == column_name.upper():
                return index
        return None

    # -- statistics --------------------------------------------------------------

    def set_relation_stats(self, table_name: str, stats: RelationStats) -> None:
        """Install NCARD/TCARD/P for a relation (UPDATE STATISTICS does this)."""
        self._relation_stats[table_name.upper()] = stats
        self._version += 1

    def relation_stats(self, table_name: str) -> RelationStats | None:
        """Statistics for a relation, or None when never collected.

        A missing entry reproduces the paper's "lack of statistics implies
        the relation is small" rule: the optimizer then falls back to the
        arbitrary default selectivity factors.
        """
        return self._relation_stats.get(table_name.upper())

    def set_index_stats(self, index_name: str, stats: IndexStats) -> None:
        """Install ICARD/NINDX/key-range for an index."""
        self._index_stats[index_name.upper()] = stats
        self._version += 1

    def index_stats(self, index_name: str) -> IndexStats | None:
        """Statistics for an index, or None when never collected."""
        return self._index_stats.get(index_name.upper())

    def clear_statistics(self) -> None:
        """Forget all statistics (used by the no-statistics ablation)."""
        self._relation_stats.clear()
        self._index_stats.clear()
        self._version += 1
