"""Edge-case tests for aggregation, grouping, and HAVING."""

import pytest

from repro import Database
from repro.workloads import load_rows


@pytest.fixture
def sales(db):
    db.execute(
        "CREATE TABLE SALES (REGION VARCHAR(8), ITEM VARCHAR(8), QTY INTEGER, "
        "PRICE FLOAT)"
    )
    load_rows(
        db,
        "SALES",
        [
            ("EAST", "A", 10, 1.5),
            ("EAST", "B", None, 2.0),
            ("EAST", "A", 5, None),
            ("WEST", "B", 7, 3.0),
            ("WEST", "B", 3, 1.0),
            (None, "C", 1, 9.0),
        ],
    )
    db.execute("UPDATE STATISTICS")
    return db


class TestGroupingEdgeCases:
    def test_null_group_key_forms_a_group(self, sales):
        result = sales.execute(
            "SELECT REGION, COUNT(*) FROM SALES GROUP BY REGION"
        )
        as_dict = dict(result.rows)
        assert as_dict[None] == 1
        assert as_dict["EAST"] == 3
        assert as_dict["WEST"] == 2

    def test_multi_column_grouping(self, sales):
        result = sales.execute(
            "SELECT REGION, ITEM, COUNT(*) FROM SALES GROUP BY REGION, ITEM"
        )
        counts = {(r, i): c for r, i, c in result.rows}
        assert counts[("EAST", "A")] == 2
        assert counts[("WEST", "B")] == 2
        assert counts[(None, "C")] == 1

    def test_sum_ignores_nulls(self, sales):
        result = sales.execute(
            "SELECT REGION, SUM(QTY) FROM SALES GROUP BY REGION"
        )
        as_dict = dict(result.rows)
        assert as_dict["EAST"] == 15  # NULL QTY skipped

    def test_avg_ignores_nulls(self, sales):
        result = sales.execute(
            "SELECT ITEM, AVG(PRICE) FROM SALES GROUP BY ITEM"
        )
        as_dict = dict(result.rows)
        assert as_dict["A"] == pytest.approx(1.5)  # one NULL price skipped

    def test_all_null_group_aggregate_is_null(self, db):
        db.execute("CREATE TABLE T (G INTEGER, V INTEGER)")
        load_rows(db, "T", [(1, None), (1, None)])
        db.execute("UPDATE STATISTICS")
        result = db.execute("SELECT G, SUM(V), AVG(V), MIN(V) FROM T GROUP BY G")
        assert result.rows == [(1, None, None, None)]

    def test_min_max_on_strings(self, sales):
        result = sales.execute("SELECT MIN(ITEM), MAX(ITEM) FROM SALES")
        assert result.rows == [("A", "C")]

    def test_count_distinct_per_group(self, sales):
        result = sales.execute(
            "SELECT REGION, COUNT(DISTINCT ITEM) FROM SALES GROUP BY REGION"
        )
        as_dict = dict(result.rows)
        assert as_dict["EAST"] == 2
        assert as_dict["WEST"] == 1

    def test_having_on_aggregate_not_in_select(self, sales):
        result = sales.execute(
            "SELECT REGION FROM SALES GROUP BY REGION HAVING SUM(QTY) > 9"
        )
        assert sorted(r[0] for r in result.rows) == ["EAST", "WEST"]

    def test_having_with_arithmetic(self, sales):
        result = sales.execute(
            "SELECT REGION FROM SALES GROUP BY REGION "
            "HAVING COUNT(*) * 2 > 4"
        )
        assert [r[0] for r in result.rows] == ["EAST"]

    def test_aggregate_expression_in_select(self, sales):
        result = sales.execute("SELECT SUM(QTY) + COUNT(*) FROM SALES")
        assert result.rows == [(26 + 6,)]

    def test_group_by_on_empty_table(self, db):
        db.execute("CREATE TABLE T (G INTEGER)")
        result = db.execute("SELECT G, COUNT(*) FROM T GROUP BY G")
        assert result.rows == []

    def test_aggregate_over_where_filter(self, sales):
        result = sales.execute(
            "SELECT COUNT(*) FROM SALES WHERE REGION = 'EAST' AND QTY > 4"
        )
        assert result.scalar() == 2

    def test_group_output_row_count_estimate(self, sales):
        planned = sales.plan("SELECT ITEM, COUNT(*) FROM SALES GROUP BY ITEM")
        # Three distinct items; the estimate need not be exact but must be
        # a small positive number, not the input cardinality.
        assert 0 < planned.root.rows <= 6
