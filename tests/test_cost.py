"""Unit tests for TABLE 2 cost formulas — exact numeric checks."""

import pytest

from repro.catalog import Catalog, IndexStats, RelationStats
from repro.datatypes import INTEGER
from repro.optimizer.cost import Cost, CostModel


@pytest.fixture
def setup():
    catalog = Catalog()
    table = catalog.create_table("T", [("A", INTEGER), ("B", INTEGER)])
    clustered = catalog.create_index("T_A", "T", ["A"], clustered=True)
    plain = catalog.create_index("T_B", "T", ["B"])
    unique = catalog.create_index("T_U", "T", ["A", "B"], unique=True)
    catalog.set_relation_stats("T", RelationStats(ncard=10000, tcard=200, fraction=0.5))
    catalog.set_index_stats("T_A", IndexStats(icard=100, nindx=20))
    catalog.set_index_stats("T_B", IndexStats(icard=100, nindx=20))
    catalog.set_index_stats("T_U", IndexStats(icard=10000, nindx=40))
    model = CostModel(catalog, w=0.1, buffer_pages=50)
    return catalog, table, clustered, plain, unique, model


class TestCostArithmetic:
    def test_total(self):
        assert Cost(pages=10, rsi=100).total(0.5) == pytest.approx(60)

    def test_add(self):
        combined = Cost(1, 2) + Cost(3, 4)
        assert (combined.pages, combined.rsi) == (4, 6)

    def test_scaled(self):
        scaled = Cost(2, 3).scaled(10)
        assert (scaled.pages, scaled.rsi) == (20, 30)


class TestTable2:
    def test_unique_index_equal(self, setup):
        *__, model = setup
        cost = model.unique_index_cost()
        assert cost.pages == 2.0
        assert cost.rsi == 1.0
        # 1 + 1 + W
        assert cost.total(0.1) == pytest.approx(2.1)

    def test_clustered_matching(self, setup):
        __, table, clustered, *___, model = setup
        # F(preds) * (NINDX + TCARD) + W * RSICARD
        cost = model.matching_index_cost(clustered, table, 0.01, rsicard=100)
        assert cost.pages == pytest.approx(0.01 * (20 + 200))
        assert cost.rsi == 100

    def test_nonclustered_matching_fits_buffer(self, setup):
        catalog, table, ___, plain, ____, _____ = setup
        # TCARD + NINDX = 220 <= 500: the relation fits, pages are never
        # re-fetched, so the TCARD-based formula applies.
        model = CostModel(catalog, w=0.1, buffer_pages=500)
        cost = model.matching_index_cost(plain, table, 0.01, rsicard=100)
        assert cost.pages == pytest.approx(0.01 * (20 + 200))

    def test_nonclustered_matching_does_not_fit(self, setup):
        __, table, ___, plain, ____, model = setup
        # TCARD + NINDX = 220 > 50: one fetch per matching tuple (NCARD).
        cost = model.matching_index_cost(plain, table, 0.5, rsicard=5000)
        assert cost.pages == pytest.approx(0.5 * (20 + 10000))

    def test_clustered_non_matching(self, setup):
        __, table, clustered, *___, model = setup
        cost = model.non_matching_index_cost(clustered, table, rsicard=10000)
        assert cost.pages == pytest.approx(20 + 200)

    def test_nonclustered_non_matching(self, setup):
        __, table, ___, plain, ____, model = setup
        # NINDX+TCARD = 220 > buffer 50, so NINDX + NCARD.
        cost = model.non_matching_index_cost(plain, table, rsicard=10000)
        assert cost.pages == pytest.approx(20 + 10000)

    def test_nonclustered_non_matching_fits_buffer(self, setup):
        catalog, table, ___, plain, ____, model = setup
        big_buffer = CostModel(catalog, w=0.1, buffer_pages=500)
        cost = big_buffer.non_matching_index_cost(plain, table, rsicard=10000)
        assert cost.pages == pytest.approx(20 + 200)

    def test_segment_scan(self, setup):
        __, table, *___, model = setup
        # TCARD / P + W * RSICARD = 200/0.5 = 400 pages.
        cost = model.segment_scan_cost(table, rsicard=1000)
        assert cost.pages == pytest.approx(400)
        assert cost.rsi == 1000


class TestJoinFormulas:
    def test_nested_loop(self, setup):
        *__, model = setup
        outer = Cost(pages=10, rsi=100)
        inner = Cost(pages=2, rsi=5)
        # C-outer + N * C-inner
        cost = model.nested_loop_cost(outer, 50, inner)
        assert cost.pages == pytest.approx(10 + 50 * 2)
        assert cost.rsi == pytest.approx(100 + 50 * 5)

    def test_merge(self, setup):
        *__, model = setup
        outer = Cost(pages=10, rsi=100)
        cost = model.merge_cost(outer, inner_one_pass_pages=30, join_matches=500)
        assert cost.pages == pytest.approx(40)
        assert cost.rsi == pytest.approx(600)

    def test_sort_build(self, setup):
        *__, model = setup
        source = Cost(pages=10, rsi=100)
        cost = model.sort_build_cost(source, rows=1000, row_bytes=40)
        assert cost.rsi == pytest.approx(100 + 1000)
        assert cost.pages > 10  # source + TEMPPAGES

    def test_temp_pages(self, setup):
        *__, model = setup
        # 40-byte rows + 4-byte slot: 92 per 4088-byte page.
        assert model.temp_pages(rows=92, row_bytes=40) == 1.0
        assert model.temp_pages(rows=93, row_bytes=40) == 2.0
        assert model.temp_pages(rows=0, row_bytes=40) == 0.0

    def test_temp_scan(self, setup):
        *__, model = setup
        cost = model.temp_scan_cost(rows=100, row_bytes=40)
        assert cost.rsi == 100
        assert cost.pages >= 1


class TestDefaults:
    def test_missing_stats_small_relation(self):
        catalog = Catalog()
        table = catalog.create_table("X", [("A", INTEGER)])
        model = CostModel(catalog)
        assert model.ncard(table) == 10
        assert model.tcard(table) == 1
        assert model.fraction(table) == 1.0
