"""Schema objects: columns, tables, and indexes.

These are pure descriptions; storage lives in :mod:`repro.rss` and the
catalog that owns them lives in :mod:`repro.catalog.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datatypes import DataType
from ..errors import CatalogError, SemanticError


@dataclass(frozen=True)
class Column:
    """A named, typed column of a relation."""

    name: str
    datatype: DataType

    def __str__(self) -> str:
        return f"{self.name} {self.datatype}"


class TableDef:
    """Definition of a stored relation.

    A table is identified by name and by a small integer ``relation_id``
    which tags every stored tuple (segments may interleave tuples of several
    relations, exactly as in the RSS).
    """

    def __init__(
        self,
        name: str,
        columns: list[Column],
        relation_id: int,
        segment_name: str,
    ):
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        seen: set[str] = set()
        for column in columns:
            if column.name in seen:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            seen.add(column.name)
        self.name = name
        self.columns = list(columns)
        self.relation_id = relation_id
        self.segment_name = segment_name
        self._index: dict[str, int] = {
            column.name: position for position, column in enumerate(columns)
        }

    def column_position(self, column_name: str) -> int:
        """Ordinal position of a column, raising on unknown names."""
        try:
            return self._index[column_name]
        except KeyError:
            raise SemanticError(
                f"table {self.name!r} has no column {column_name!r}"
            ) from None

    def column(self, column_name: str) -> Column:
        """The column definition for a name; raises on unknown names."""
        return self.columns[self.column_position(column_name)]

    def has_column(self, column_name: str) -> bool:
        """Whether the table has a column of this name."""
        return column_name in self._index

    @property
    def column_names(self) -> list[str]:
        """Column names in ordinal position order."""
        return [column.name for column in self.columns]

    def __repr__(self) -> str:
        cols = ", ".join(str(column) for column in self.columns)
        return f"TableDef({self.name}: {cols})"


@dataclass
class IndexDef:
    """Definition of a B-tree index on one or more columns of a table.

    ``clustered`` mirrors the paper's notion: tuples were inserted into
    segment pages in index-key order and that proximity is maintained, so a
    scan through the index touches each data page only once.
    """

    name: str
    table_name: str
    column_names: list[str]
    unique: bool = False
    clustered: bool = False
    key_positions: list[int] = field(default_factory=list)

    def key_of(self, values: tuple) -> tuple:
        """Extract this index's key from a full tuple of column values."""
        return tuple(values[position] for position in self.key_positions)

    def __repr__(self) -> str:
        flags = []
        if self.unique:
            flags.append("unique")
        if self.clustered:
            flags.append("clustered")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        columns = ", ".join(self.column_names)
        return f"IndexDef({self.name} on {self.table_name}({columns}){suffix})"
