"""Unit tests for the dynamic-programming join enumeration."""

import pytest

from repro.catalog import Catalog, IndexStats, RelationStats
from repro.datatypes import INTEGER
from repro.optimizer.binder import Binder
from repro.optimizer.cost import CostModel
from repro.optimizer.joins import JoinSearch
from repro.optimizer.orders import InterestingOrders
from repro.optimizer.plan import (
    MergeJoinNode,
    NestedLoopJoinNode,
    ScanNode,
    SortNode,
    walk_plan,
)
from repro.optimizer.predicates import to_cnf_factors
from repro.optimizer.selectivity import SelectivityEstimator
from repro.sql import parse_statement


@pytest.fixture
def catalog():
    catalog = Catalog()
    for name, rows, pages in (("T1", 1000, 20), ("T2", 500, 10), ("T3", 100, 4)):
        catalog.create_table(
            name, [("ID", INTEGER), ("A", INTEGER), ("B", INTEGER)]
        )
        catalog.set_relation_stats(name, RelationStats(rows, pages, 1.0))
    catalog.create_index("T1_A", "T1", ["A"])
    catalog.set_index_stats("T1_A", IndexStats(40, 4, 1, 40))
    catalog.create_index("T2_A", "T2", ["A"])
    catalog.set_index_stats("T2_A", IndexStats(40, 3, 1, 40))
    catalog.create_index("T2_B", "T2", ["B"])
    catalog.set_index_stats("T2_B", IndexStats(25, 3, 1, 25))
    catalog.create_index("T3_B", "T3", ["B"])
    catalog.set_index_stats("T3_B", IndexStats(25, 2, 1, 25))
    return catalog


def search_for(catalog, sql, **kwargs) -> JoinSearch:
    block = Binder(catalog).bind(parse_statement(sql))
    factors = to_cnf_factors(block.where, block)
    orders = InterestingOrders(block, factors)
    search = JoinSearch(
        block,
        factors,
        catalog,
        SelectivityEstimator(catalog),
        CostModel(catalog, w=0.05),
        orders,
        **kwargs,
    )
    search.search()
    return search


CHAIN = (
    "SELECT * FROM T1, T2, T3 "
    "WHERE T1.A = T2.A AND T2.B = T3.B"
)


class TestSearchStructure:
    def test_all_single_subsets_seeded(self, catalog):
        search = search_for(catalog, CHAIN)
        for name in ("T1", "T2", "T3"):
            assert search.solutions_for({name})

    def test_full_solution_exists(self, catalog):
        search = search_for(catalog, CHAIN)
        assert search.solutions_for({"T1", "T2", "T3"})

    def test_heuristic_skips_cartesian_pair(self, catalog):
        search = search_for(catalog, CHAIN)
        # T1 and T3 are not directly connected: the pair must never form.
        assert not search.solutions_for({"T1", "T3"})

    def test_heuristic_disabled_allows_cartesian_pair(self, catalog):
        search = search_for(catalog, CHAIN, use_heuristic=False)
        assert search.solutions_for({"T1", "T3"})

    def test_heuristic_reduces_stored_entries(self, catalog):
        with_h = search_for(catalog, CHAIN)
        without_h = search_for(catalog, CHAIN, use_heuristic=False)
        assert with_h.total_entries() < without_h.total_entries()

    def test_same_best_cost_with_and_without_heuristic_when_connected(
        self, catalog
    ):
        model = CostModel(catalog, w=0.05)
        with_h = search_for(catalog, CHAIN)
        without_h = search_for(catalog, CHAIN, use_heuristic=False)
        full = {"T1", "T2", "T3"}
        best_with = min(
            model.total(e.cost) for e in with_h.solutions_for(full).values()
        )
        best_without = min(
            model.total(e.cost) for e in without_h.solutions_for(full).values()
        )
        # For a connected chain the heuristic loses nothing here.
        assert best_with <= best_without * 1.0001

    def test_storage_bound(self, catalog):
        # "At most 2^n subsets times the number of interesting orders."
        search = search_for(catalog, CHAIN)
        order_count = 3  # classes: A-class, B-class, plus unordered
        assert search.total_entries() <= (2**3) * order_count

    def test_disconnected_query_still_plans(self, catalog):
        search = search_for(catalog, "SELECT * FROM T1, T2 WHERE T1.ID = 5")
        full = {"T1", "T2"}
        assert search.solutions_for(full)
        entry = search.cheapest(search.solutions_for(full))
        assert isinstance(entry.plan, NestedLoopJoinNode)


class TestMethods:
    def test_both_methods_considered(self, catalog):
        search = search_for(catalog, CHAIN)
        full = {"T1", "T2", "T3"}
        kinds = set()
        for entry in search.solutions_for(full).values():
            for node in walk_plan(entry.plan):
                kinds.add(type(node))
        assert NestedLoopJoinNode in kinds or MergeJoinNode in kinds

    def test_merge_entry_carries_order(self, catalog):
        search = search_for(catalog, CHAIN)
        pair = {"T1", "T2"}
        ordered = [key for key in search.solutions_for(pair) if key]
        assert ordered  # some ordered solution exists for the join column

    def test_nested_loop_preserves_outer_order(self, catalog):
        search = search_for(catalog, CHAIN)
        pair = {"T1", "T2"}
        for key, entry in search.solutions_for(pair).items():
            if isinstance(entry.plan, NestedLoopJoinNode):
                assert entry.plan.order_columns == entry.plan.outer.order_columns

    def test_interesting_orders_disabled_keeps_single_entry(self, catalog):
        search = search_for(catalog, CHAIN, use_interesting_orders=False)
        for entries in search.best.values():
            assert len(entries) == 1

    def test_orders_enabled_never_costs_more(self, catalog):
        model = CostModel(catalog, w=0.05)
        full = {"T1", "T2", "T3"}
        with_orders = search_for(catalog, CHAIN)
        without = search_for(catalog, CHAIN, use_interesting_orders=False)
        best_with = min(
            model.total(e.cost) for e in with_orders.solutions_for(full).values()
        )
        best_without = min(
            model.total(e.cost) for e in without.solutions_for(full).values()
        )
        assert best_with <= best_without * 1.0001


class TestEstimates:
    def test_rows_independent_of_join_order(self, catalog):
        search = search_for(catalog, CHAIN)
        full = {"T1", "T2", "T3"}
        rows = {round(entry.rows, 6) for entry in search.solutions_for(full).values()}
        assert len(rows) == 1  # "cardinality is the same regardless of order"

    def test_stats_populated(self, catalog):
        search = search_for(catalog, CHAIN)
        assert search.stats.plans_considered > 0
        assert search.stats.entries_stored > 0
        assert search.stats.subsets_expanded > 0
