"""``repro check`` exit codes and report formats across the sub-checks.

The whole-program sections (``--effects`` / ``--concurrency`` /
``--dead-code``) run for real against fixture trees via ``--root`` /
``--baseline`` — each with a seeded violation proving the check can fail
— and against ``src/repro`` proving it passes.  The corpus sections
(``--storage``, ``--fusion``, ``--plans``, ``--costs``) are exercised for
dispatch and exit-code plumbing with stubbed runners: their multi-minute
corpora have their own tests, and the plumbing is what this file owns.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import check as check_module
from repro.analysis.check import main as check_main
from repro.analysis.plan_check import Violation
from repro.cli import main as cli_main


def write(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def seeded_tree(tmp_path):
    """A fixture package with one unguarded module-level global."""
    write(
        tmp_path,
        "pkg/m.py",
        """
        CACHE = {}

        def memo(key, value):
            CACHE[key] = value
        """,
    )
    return tmp_path / "pkg"


def empty_baseline(tmp_path):
    path = tmp_path / "baseline.toml"
    path.write_text("", encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# exit codes on the real tree
# ---------------------------------------------------------------------------


def test_effects_passes_on_the_real_tree(capsys):
    assert check_main(["--effects"]) == 0
    out = capsys.readouterr().out
    assert "check --effects:" in out
    assert "pure" in out
    assert "all checks passed" in out


def test_concurrency_passes_on_the_real_tree(capsys):
    assert check_main(["--concurrency"]) == 0
    out = capsys.readouterr().out
    assert "check --concurrency:" in out
    assert "mergeable-counter" in out
    assert "statement-scoped" in out


def test_dead_code_passes_on_the_real_tree(capsys):
    assert check_main(["--dead-code"]) == 0
    out = capsys.readouterr().out
    assert "checked for reachability" in out


def test_lint_passes_on_the_real_tree(capsys):
    assert check_main(["--lint"]) == 0
    assert "check --lint:" in capsys.readouterr().out


def test_cli_dispatches_check(capsys):
    assert cli_main(["check", "--lint"]) == 0
    assert "all checks passed" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# seeded failures: every whole-program section can actually fail
# ---------------------------------------------------------------------------


def test_effects_fails_on_seeded_global_write(tmp_path, capsys):
    root = seeded_tree(tmp_path)
    assert check_main(["--effects", "--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "effect-global-write" in out
    assert "memo" in out


def test_concurrency_fails_on_seeded_unguarded_global(tmp_path, capsys):
    root = seeded_tree(tmp_path)
    code = check_main(
        [
            "--concurrency",
            "--root",
            str(root),
            "--baseline",
            str(empty_baseline(tmp_path)),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "unguarded-shared-state" in out
    assert "m.py::CACHE" in out


def test_concurrency_seeded_failure_clears_with_baseline(tmp_path, capsys):
    root = seeded_tree(tmp_path)
    baseline = tmp_path / "baseline.toml"
    baseline.write_text(
        '["m.py::CACHE"]\n'
        'classification = "UNGUARDED"\n'
        'reason = "fixture: acknowledged for the exit-code test"\n',
        encoding="utf-8",
    )
    code = check_main(
        ["--concurrency", "--root", str(root), "--baseline", str(baseline)]
    )
    assert code == 0
    assert "all checks passed" in capsys.readouterr().out


def test_dead_code_fails_on_seeded_orphan(tmp_path, capsys):
    write(
        tmp_path,
        "pkg/m.py",
        """
        def zzz_orphan_nobody_calls():
            return 1
        """,
    )
    code = check_main(["--dead-code", "--root", str(tmp_path / "pkg")])
    assert code == 1
    out = capsys.readouterr().out
    assert "dead-code" in out
    assert "zzz_orphan_nobody_calls" in out


def test_lint_fails_on_seeded_mutable_default(tmp_path, capsys, monkeypatch):
    write(tmp_path, "pkg/optimizer/plan.py", "class PlanNode:\n    pass\n")
    write(
        tmp_path,
        "pkg/engine/util.py",
        """
        def collect(into=[]):
            return into
        """,
    )
    monkeypatch.setattr(
        check_module,
        "check_lint",
        lambda echo=print: check_module.lint_repo(tmp_path / "pkg"),
    )
    assert check_main(["--lint"]) == 1
    assert "mutable-default" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# corpus sections: dispatch and exit-code plumbing (stubbed runners)
# ---------------------------------------------------------------------------

_CORPUS_SECTIONS = {
    "--storage": "check_storage",
    "--fusion": "check_fusion",
    "--plans": "check_plans",
    "--costs": "check_costs",
}


@pytest.mark.parametrize("flag,runner", sorted(_CORPUS_SECTIONS.items()))
def test_corpus_section_clean_exit(flag, runner, capsys, monkeypatch):
    calls = []
    monkeypatch.setattr(
        check_module, runner, lambda *a, **kw: calls.append(1) or []
    )
    assert check_main([flag]) == 0
    assert calls == [1]
    assert f"check {flag}:" in capsys.readouterr().out


@pytest.mark.parametrize("flag,runner", sorted(_CORPUS_SECTIONS.items()))
def test_corpus_section_violation_exit(flag, runner, capsys, monkeypatch):
    seeded = [Violation("seeded-rule", "somewhere", "seeded violation")]
    monkeypatch.setattr(check_module, runner, lambda *a, **kw: list(seeded))
    assert check_main([flag]) == 1
    captured = capsys.readouterr()
    assert "FAIL [seeded-rule] somewhere: seeded violation" in captured.out
    assert "1 violation(s)" in captured.err


def test_run_all_covers_every_section(capsys, monkeypatch):
    ran = []
    for runner in (
        "check_lint",
        "check_effects",
        "check_concurrency",
        "check_dead_code",
        "check_costs",
        "check_storage",
        "check_fusion",
        "check_plans",
    ):
        monkeypatch.setattr(
            check_module,
            runner,
            lambda *a, __name=runner, **kw: ran.append(__name) or [],
        )
    assert check_main([]) == 0
    assert len(ran) == 8
    out = capsys.readouterr().out
    for section in (
        "lint",
        "effects",
        "concurrency",
        "dead-code",
        "costs",
        "storage",
        "fusion",
        "plans",
    ):
        assert f"check --{section}:" in out


# ---------------------------------------------------------------------------
# --json: one machine-readable document
# ---------------------------------------------------------------------------


def test_json_reports_effects_and_concurrency(capsys):
    assert check_main(["--effects", "--concurrency", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert document["failures"] == 0
    effects = document["sections"]["effects"]
    assert effects["ok"] is True
    assert effects["violations"] == []
    summary = effects["report"]["summary"]
    assert summary["total"] > 500
    assert summary["pure"] > 0
    signatures = effects["report"]["signatures"]
    assert "optimizer/cost.py::CostModel.segment_scan_cost" in signatures
    concurrency = document["sections"]["concurrency"]
    findings = {f["key"]: f for f in concurrency["report"]["findings"]}
    counters = findings["rss/counters.py::CostCounters.page_fetches"]
    assert counters["classification"] == "mergeable-counter"
    assert counters["kind"] == "counter-field"


def test_json_failure_document_carries_violations(tmp_path, capsys):
    root = seeded_tree(tmp_path)
    code = check_main(
        [
            "--concurrency",
            "--json",
            "--root",
            str(root),
            "--baseline",
            str(empty_baseline(tmp_path)),
        ]
    )
    assert code == 1
    captured = capsys.readouterr()
    document = json.loads(captured.out)
    assert document["ok"] is False
    assert document["failures"] == 1
    violation = document["sections"]["concurrency"]["violations"][0]
    assert violation["rule"] == "unguarded-shared-state"
    assert violation["where"] == "m.py::CACHE"
    # the human narration stays off stdout so the document parses clean
    assert captured.out.lstrip().startswith("{")


def test_json_suppresses_section_narration(capsys, monkeypatch):
    monkeypatch.setattr(check_module, "check_lint", lambda *a, **kw: [])
    assert check_main(["--lint", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["sections"]["lint"] == {
        "ok": True,
        "violations": [],
        "report": {},
    }
