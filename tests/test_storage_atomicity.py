"""Statement atomicity: a failed statement leaves no trace.

The seed's storage engine could diverge: an exception raised between the
segment insert and the B-tree maintenance (the second of two index inserts,
say) left the tuple stored but half-indexed.  Every mutating statement now
runs in a micro-transaction, so these tests drive faults into every layer
and assert the store afterwards is *exactly* the pre-statement store.
"""

import pytest

from repro.analysis.storage_check import logical_dump, verify_storage
from repro.database import Database
from repro.errors import FaultInjectedError, IntegrityError, StorageError
from repro.rss.faults import FaultPlan, fault_plan, get_injector


@pytest.fixture(autouse=True)
def _disarm():
    yield
    get_injector().disarm()


def two_index_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER, C VARCHAR(12))")
    db.execute("CREATE INDEX TA ON T (A)")
    db.execute("CREATE INDEX TB ON T (B)")
    for i in range(12):
        db.execute(f"INSERT INTO T VALUES ({i}, {i * 10}, 'ROW{i}')")
    return db


class TestIndexDivergenceRegression:
    def test_failed_second_index_insert_rolls_back_everything(self):
        """The regression from the ISSUE: segment and first index must not
        keep the row when the second index insert dies."""
        db = two_index_db()
        before = logical_dump(db)
        # hit 2 = the second B-tree touched by the statement (index TB)
        with fault_plan(FaultPlan("btree.insert", hit=2)):
            with pytest.raises(FaultInjectedError):
                db.execute("INSERT INTO T VALUES (99, 990, 'DOOMED')")
        assert logical_dump(db) == before
        assert verify_storage(db) == []
        # neither index knows the key
        assert db.execute("SELECT C FROM T WHERE A = 99").rows == []
        assert db.execute("SELECT C FROM T WHERE B = 990").rows == []

    def test_store_retries_cleanly_after_rollback(self):
        db = two_index_db()
        with fault_plan(FaultPlan("btree.insert", hit=2)):
            with pytest.raises(FaultInjectedError):
                db.execute("INSERT INTO T VALUES (99, 990, 'DOOMED')")
        db.execute("INSERT INTO T VALUES (99, 990, 'RETRIED')")
        assert db.execute("SELECT C FROM T WHERE A = 99").rows == [("RETRIED",)]
        assert verify_storage(db) == []


class TestStatementRollback:
    @pytest.mark.parametrize(
        "point", ["segment.insert", "btree.insert", "page.mutate"]
    )
    def test_insert_rolls_back_at_any_layer(self, point):
        db = two_index_db()
        before = logical_dump(db)
        with fault_plan(FaultPlan(point, hit=1)):
            with pytest.raises(StorageError):
                db.execute("INSERT INTO T VALUES (77, 770, 'NOPE')")
        assert logical_dump(db) == before
        assert verify_storage(db) == []

    def test_failed_page_allocation_rolls_back(self):
        """Fill the last page so the insert must allocate — and fail there."""
        db = Database()
        db.execute("CREATE TABLE BIG (A INTEGER, PAD VARCHAR(3000))")
        db.execute("CREATE INDEX BIGA ON BIG (A)")
        db.execute(f"INSERT INTO BIG VALUES (1, '{'X' * 3000}')")
        before = logical_dump(db)
        pages_before = len(db.storage.store)
        with fault_plan(FaultPlan("page.alloc", hit=1)):
            with pytest.raises(FaultInjectedError):
                db.execute(f"INSERT INTO BIG VALUES (2, '{'Y' * 3000}')")
        assert logical_dump(db) == before
        assert len(db.storage.store) == pages_before
        assert verify_storage(db) == []

    @pytest.mark.parametrize("point", ["segment.update", "btree.delete"])
    def test_update_rolls_back(self, point):
        db = two_index_db()
        before = logical_dump(db)
        with fault_plan(FaultPlan(point, hit=1)):
            with pytest.raises(StorageError):
                db.execute("UPDATE T SET B = B + 1000 WHERE A < 6")
        assert logical_dump(db) == before
        assert verify_storage(db) == []

    def test_multi_row_statement_is_all_or_nothing(self):
        """A fault on the 3rd row of a 5-row INSERT undoes rows 1-2 too."""
        db = two_index_db()
        before = logical_dump(db)
        with fault_plan(FaultPlan("segment.insert", hit=3)):
            with pytest.raises(FaultInjectedError):
                db.execute(
                    "INSERT INTO T VALUES (50, 1, 'A'), (51, 2, 'B'), "
                    "(52, 3, 'C'), (53, 4, 'D'), (54, 5, 'E')"
                )
        assert logical_dump(db) == before
        assert verify_storage(db) == []

    def test_delete_rolls_back_midway(self):
        db = two_index_db()
        before = logical_dump(db)
        with fault_plan(FaultPlan("btree.delete", hit=5)):
            with pytest.raises(FaultInjectedError):
                db.execute("DELETE FROM T WHERE A < 8")
        assert logical_dump(db) == before
        assert verify_storage(db) == []

    def test_integrity_error_is_atomic_too(self):
        """A unique violation after earlier rows landed undoes those rows."""
        db = Database()
        db.execute("CREATE TABLE U (A INTEGER)")
        db.execute("CREATE UNIQUE INDEX UA ON U (A)")
        db.execute("INSERT INTO U VALUES (5)")
        before = logical_dump(db)
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO U VALUES (1), (2), (5)")
        assert logical_dump(db) == before
        assert verify_storage(db) == []


class TestDdlRollback:
    def test_failed_index_build_leaves_no_orphan_pages(self):
        db = two_index_db()
        pages_before = len(db.storage.store)
        with fault_plan(FaultPlan("btree.insert", hit=5)):
            with pytest.raises(FaultInjectedError):
                db.execute("CREATE INDEX TC ON T (C)")
        assert len(db.storage.store) == pages_before
        assert verify_storage(db) == []
        # the catalog was cleaned up, so the name is reusable
        db.execute("CREATE INDEX TC ON T (C)")
        assert verify_storage(db) == []

    def test_drop_index_releases_its_node_pages(self):
        db = two_index_db()
        pages_before = len(db.storage.store)
        db.execute("DROP INDEX TB")
        assert len(db.storage.store) < pages_before
        assert verify_storage(db) == []
        assert db.execute("SELECT C FROM T WHERE A = 3").rows == [("ROW3",)]

    def test_failed_clustering_restores_old_layout(self):
        db = two_index_db()
        before = logical_dump(db)
        with fault_plan(FaultPlan("btree.split", hit=1)):
            # force splits during the clustered rebuild with a wide key
            db.execute("CREATE TABLE W (K VARCHAR(500), V INTEGER)")
            for i in range(9):
                db.execute(f"INSERT INTO W VALUES ('{'K' * 400}{i}', {i})")
            with pytest.raises(FaultInjectedError):
                db.execute("CREATE INDEX WK ON W (K) CLUSTER")
        assert logical_dump(db)["T"] == before["T"]
        assert verify_storage(db) == []
        assert db.execute("SELECT COUNT(*) FROM W").scalar() == 9

    def test_crashed_engine_refuses_further_statements(self):
        import os
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            db = Database(path=os.path.join(tmp, "db.pages"))
            db.execute("CREATE TABLE T (A INTEGER)")
            with fault_plan(FaultPlan("fsync", hit=1, action="crash")):
                with pytest.raises(StorageError):
                    db.execute("INSERT INTO T VALUES (1)")
            with pytest.raises(StorageError, match="crashed"):
                db.execute("INSERT INTO T VALUES (2)")
            db.close()


class TestGroupCommitAtomicity:
    """A queued batch is one atomic unit: a mid-batch statement failure
    rolls back that statement alone, while a commit-path failure rolls
    back every participant — proven by a logical dump diff."""

    def _queue_batch(self, db, statements, plan=None):
        import threading
        import time

        coordinator = db._coordinator
        assert coordinator._commit_lock.try_acquire()
        outcomes = [None] * len(statements)

        def submit(i, sql):
            session = db.session(f"batch-{i}")
            try:
                outcomes[i] = session.execute(sql)
            except Exception as error:  # noqa: BLE001 — outcome under test
                outcomes[i] = error
            finally:
                session.close()

        threads = [
            threading.Thread(target=submit, args=(i, sql), daemon=True)
            for i, sql in enumerate(statements)
        ]
        if plan is not None:
            get_injector().arm(plan)
        try:
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with coordinator._queue_lock:
                    if len(coordinator._queue) == len(statements):
                        break
                time.sleep(0.002)
        finally:
            coordinator._commit_lock.release()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        get_injector().disarm()
        return outcomes

    def test_commit_fault_aborts_whole_batch(self):
        from repro.errors import CommitAbortedError

        db = two_index_db()
        before = logical_dump(db)
        outcomes = self._queue_batch(
            db,
            [
                "INSERT INTO T VALUES (201, 2010, 'BATCH1')",
                "UPDATE T SET C = 'TOUCHED' WHERE A < 3",
                "DELETE FROM T WHERE A = 5",
            ],
            # before-flip trips in the engine's commit path, so it fires
            # for the in-memory store too (after-fsync lives in the disk
            # layer and is covered by the durable stress fault smoke)
            plan=FaultPlan("group-commit.before-flip", 1, "error"),
        )
        assert all(
            isinstance(outcome, CommitAbortedError) for outcome in outcomes
        ), outcomes
        # all-or-nothing: the dump diff is empty and storage checks clean
        assert logical_dump(db) == before
        assert verify_storage(db) == []

    def test_statement_fault_rolls_back_that_statement_alone(self):
        db = two_index_db()
        outcomes = self._queue_batch(
            db,
            [
                "INSERT INTO T VALUES (301, 3010, 'KEEP1')",
                "INSERT INTO T VALUES (302, 3020, 'DOOMED')",
                "INSERT INTO T VALUES (303, 3030, 'KEEP2')",
            ],
            # hit 3 = a B-tree insert inside one of the batched statements
            # (2 index inserts per statement: hit 3 is statement two's
            # first index touch)
            plan=FaultPlan("btree.insert", hit=3),
        )
        failures = [o for o in outcomes if isinstance(o, FaultInjectedError)]
        commits = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(failures) == 1
        assert len(commits) == 2
        kept = db.execute("SELECT C FROM T WHERE A >= 301").rows
        assert len(kept) == 2
        assert verify_storage(db) == []
