"""Selectivity factors — a faithful transcription of TABLE 1.

Each boolean factor gets a selectivity factor F, "the expected fraction of
tuples which will satisfy the predicate".  Statistics come from the catalog
(ICARD of an index on the column, high/low key values); when they are
missing, the paper's arbitrary defaults apply — chosen only so that
equality guesses are more selective than range guesses, which stay below
one half.
"""

from __future__ import annotations

from ..catalog.catalog import Catalog
from ..rss.sargs import CompareOp
from ..sql import ast
from .bound import BoundColumn, BoundQueryBlock, BoundSubquery
from .predicates import BooleanFactor

# TABLE 1's arbitrary defaults.
DEFAULT_EQ = 1.0 / 10.0
DEFAULT_RANGE = 1.0 / 3.0
DEFAULT_BETWEEN = 1.0 / 4.0
IN_LIST_CAP = 1.0 / 2.0
# Predicates the paper does not tabulate (LIKE, IS NULL); documented choice.
DEFAULT_OTHER = 1.0 / 10.0
# "Lack of statistics implies that the relation is small."
SMALL_NCARD = 10
SMALL_TCARD = 1


class SelectivityEstimator:
    """Computes F for boolean factors, and QCARD / RSICARD for blocks.

    Lookups are memoized: per-factor F values, per-block QCARDs, and the
    index-derived ICARD / key-range statistics behind them.  Every cache
    is stamped with :attr:`Catalog.version` and dropped wholesale when the
    catalog changes, so ``UPDATE STATISTICS`` (or any DDL) is visible to
    the very next estimate even on a long-lived estimator.
    """

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._version = catalog.version
        # id() keys hold the keyed object in the value, pinning it alive
        # so the id cannot be recycled while the cache entry exists.
        self._factor_cache: dict[int, tuple[BooleanFactor, float]] = {}
        self._qcard_cache: dict[int, tuple[BoundQueryBlock, tuple[int, ...], float]] = {}
        self._icard_cache: dict[tuple[str, str], int | None] = {}
        self._key_range_cache: dict[tuple[str, str], tuple[float, float] | None] = {}

    def _validate_caches(self) -> None:
        version = self._catalog.version
        if version != self._version:
            self._version = version
            self._factor_cache.clear()
            self._qcard_cache.clear()
            self._icard_cache.clear()
            self._key_range_cache.clear()

    # -- public API -------------------------------------------------------------

    def factor_selectivity(self, factor: BooleanFactor) -> float:
        """F for one boolean factor (TABLE 1)."""
        self._validate_caches()
        cached = self._factor_cache.get(id(factor))
        if cached is None:
            cached = self._factor_cache[id(factor)] = (
                factor,
                self.expr_selectivity(factor.expr),
            )
        return cached[1]

    def expr_selectivity(self, expr: ast.Expr) -> float:
        """F for an arbitrary bound predicate expression."""
        if isinstance(expr, ast.And):
            result = 1.0
            for operand in expr.operands:
                result *= self.expr_selectivity(operand)
            return result
        if isinstance(expr, ast.Or):
            result = 0.0
            for operand in expr.operands:
                f = self.expr_selectivity(operand)
                result = result + f - result * f
            return result
        if isinstance(expr, ast.Not):
            return 1.0 - self.expr_selectivity(expr.operand)
        if isinstance(expr, ast.Comparison):
            return self._comparison(expr)
        if isinstance(expr, ast.Between):
            return self._between(expr)
        if isinstance(expr, ast.InList):
            return self._in_list(expr)
        if isinstance(expr, ast.InSubquery):
            return self._in_subquery(expr)
        if isinstance(expr, (ast.Like, ast.IsNull)):
            return 1.0 - DEFAULT_OTHER if expr.negated else DEFAULT_OTHER
        return DEFAULT_RANGE  # opaque predicate: a guess below one half

    def relation_cardinality(self, table_name: str) -> int:
        """NCARD with the small-relation default."""
        stats = self._catalog.relation_stats(table_name)
        return stats.ncard if stats is not None else SMALL_NCARD

    def block_qcard(self, block: BoundQueryBlock, factors: list[BooleanFactor]) -> float:
        """QCARD: product of FROM cardinalities times all factor F's."""
        self._validate_caches()
        factor_ids = tuple(id(factor) for factor in factors)
        cached = self._qcard_cache.get(id(block))
        if cached is not None and cached[1] == factor_ids:
            return cached[2]
        qcard = 1.0
        for entry in block.tables:
            qcard *= self.relation_cardinality(entry.table.name)
        for factor in factors:
            qcard *= self.factor_selectivity(factor)
        self._qcard_cache[id(block)] = (block, factor_ids, qcard)
        return qcard

    def block_output_cardinality(
        self, block: BoundQueryBlock, factors: list[BooleanFactor]
    ) -> float:
        """Expected rows the block returns, accounting for aggregation."""
        qcard = self.block_qcard(block, factors)
        if block.is_aggregate and not block.group_by:
            return 1.0
        if block.group_by:
            # Expected groups: bounded by the key cardinality of the first
            # grouping column when an index reveals it, and always by the
            # input cardinality itself — every group holds at least one
            # tuple, so a sub-one QCARD cannot produce a full group.
            icard = self._icard(block.group_by[0])
            if icard is not None:
                return min(qcard, float(icard))
            return min(qcard, max(1.0, qcard * DEFAULT_EQ))
        return qcard

    # -- TABLE 1 cases --------------------------------------------------------------

    def _comparison(self, expr: ast.Comparison) -> float:
        left, right = expr.left, expr.right
        # column op column
        if isinstance(left, BoundColumn) and isinstance(right, BoundColumn):
            return self._column_column(left, right, expr.op)
        # column op value (either orientation)
        if isinstance(left, BoundColumn):
            return self._column_value(left, expr.op, right)
        if isinstance(right, BoundColumn):
            return self._column_value(right, expr.op.flipped(), left)
        return _default_for_op(expr.op)

    def _column_column(
        self, left: BoundColumn, right: BoundColumn, op: CompareOp
    ) -> float:
        if op is not CompareOp.EQ:
            return DEFAULT_RANGE if op is not CompareOp.NE else 1.0 - DEFAULT_EQ
        left_icard = self._icard(left)
        right_icard = self._icard(right)
        if left_icard and right_icard:
            return 1.0 / max(left_icard, right_icard)
        if left_icard:
            return 1.0 / left_icard
        if right_icard:
            return 1.0 / right_icard
        return DEFAULT_EQ

    def _column_value(
        self, column: BoundColumn, op: CompareOp, value: ast.Expr
    ) -> float:
        if op is CompareOp.EQ:
            icard = self._icard(column)
            return 1.0 / icard if icard else DEFAULT_EQ
        if op is CompareOp.NE:
            icard = self._icard(column)
            return 1.0 - (1.0 / icard if icard else DEFAULT_EQ)
        # Open-ended comparison: linear interpolation when the column is
        # arithmetic and the value is known at access path selection time.
        known = _literal_number(value)
        key_range = self._key_range(column)
        if (
            known is not None
            and column.datatype.is_arithmetic
            and key_range is not None
        ):
            low, high = key_range
            if high <= low:
                return DEFAULT_RANGE
            if op in (CompareOp.GT, CompareOp.GE):
                fraction = (high - known) / (high - low)
            else:
                fraction = (known - low) / (high - low)
            return min(1.0, max(0.0, fraction))
        return DEFAULT_RANGE

    def _between(self, expr: ast.Between) -> float:
        column = expr.operand
        low_value = _literal_number(expr.low)
        high_value = _literal_number(expr.high)
        if (
            isinstance(column, BoundColumn)
            and column.datatype.is_arithmetic
            and low_value is not None
            and high_value is not None
        ):
            key_range = self._key_range(column)
            if key_range is not None:
                low, high = key_range
                if high > low:
                    fraction = (high_value - low_value) / (high - low)
                    return min(1.0, max(0.0, fraction))
        return DEFAULT_BETWEEN

    def _in_list(self, expr: ast.InList) -> float:
        if isinstance(expr.operand, BoundColumn):
            icard = self._icard(expr.operand)
            per_value = 1.0 / icard if icard else DEFAULT_EQ
        else:
            per_value = DEFAULT_EQ
        return min(IN_LIST_CAP, len(expr.values) * per_value)

    def _in_subquery(self, expr: ast.InSubquery) -> float:
        subquery = expr.subquery
        assert isinstance(subquery, BoundSubquery)
        block = subquery.block
        from .predicates import to_cnf_factors

        factors = to_cnf_factors(block.where, block)
        expected = self.block_output_cardinality(block, factors)
        domain = 1.0
        for entry in block.tables:
            domain *= self.relation_cardinality(entry.table.name)
        if domain <= 0:
            return DEFAULT_EQ
        return min(1.0, max(0.0, expected / domain))

    # -- statistics lookups ------------------------------------------------------------

    def column_icard(self, column: BoundColumn) -> int | None:
        """Distinct values of a column, when an index reveals them."""
        return self._icard(column)

    def _icard(self, column: BoundColumn) -> int | None:
        """ICARD of an index whose first key column is ``column``, if any.

        A composite index reports the leading column's own cardinality
        (``prefix_icards[0]``) when collected; the full-key ICARD would
        overstate the column's distinct-value count and poison equality
        selectivities on multi-column indexes.
        """
        self._validate_caches()
        key = (column.table_name, column.column_name)
        if key in self._icard_cache:
            return self._icard_cache[key]
        index = self._catalog.index_on_column(*key)
        icard: int | None = None
        if index is not None:
            stats = self._catalog.index_stats(index.name)
            if stats is not None:
                if stats.prefix_icards and stats.prefix_icards[0] > 0:
                    icard = stats.prefix_icards[0]
                elif stats.icard > 0:
                    icard = stats.icard
        self._icard_cache[key] = icard
        return icard

    def _key_range(self, column: BoundColumn) -> tuple[float, float] | None:
        self._validate_caches()
        key = (column.table_name, column.column_name)
        if key in self._key_range_cache:
            return self._key_range_cache[key]
        result: tuple[float, float] | None = None
        index = self._catalog.index_on_column(*key)
        if index is not None:
            stats = self._catalog.index_stats(index.name)
            if stats is not None:
                low, high = stats.low_key, stats.high_key
                if isinstance(low, (int, float)) and isinstance(high, (int, float)):
                    result = (float(low), float(high))
        self._key_range_cache[key] = result
        return result


def _literal_number(expr: ast.Expr) -> float | None:
    if isinstance(expr, ast.Literal) and isinstance(expr.value, (int, float)):
        return float(expr.value)
    return None


def _default_for_op(op: CompareOp) -> float:
    if op is CompareOp.EQ:
        return DEFAULT_EQ
    if op is CompareOp.NE:
        return 1.0 - DEFAULT_EQ
    return DEFAULT_RANGE
