"""Tests for workload construction and query generation."""

import random

import pytest

from repro.workloads import (
    ColumnSpec,
    IndexSpec,
    TableSpec,
    build_database,
    build_empdept,
    chain_join_query,
    random_chain_spec,
    random_select_query,
)


class TestEmpDept:
    def test_row_counts(self, empdept):
        assert empdept.execute("SELECT COUNT(*) FROM EMP").scalar() == 400
        assert empdept.execute("SELECT COUNT(*) FROM DEPT").scalar() == 20
        assert empdept.execute("SELECT COUNT(*) FROM JOB").scalar() == 5

    def test_indexes_present(self, empdept):
        names = {index.name for index in empdept.catalog.indexes_on("EMP")}
        assert names == {"EMP_DNO", "EMP_JOB"}
        assert empdept.catalog.index("DEPT_DNO").unique

    def test_statistics_collected(self, empdept):
        assert empdept.catalog.relation_stats("EMP").ncard == 400
        assert empdept.catalog.index_stats("EMP_DNO").icard == 20

    def test_deterministic_by_seed(self):
        one = build_empdept(employees=50, seed=5)
        two = build_empdept(employees=50, seed=5)
        assert (
            one.execute("SELECT * FROM EMP ORDER BY ENO").rows
            == two.execute("SELECT * FROM EMP ORDER BY ENO").rows
        )

    def test_clustered_variant(self, empdept_clustered):
        index = empdept_clustered.catalog.index("EMP_DNO")
        assert index.clustered
        dnos = [
            row[0]
            for row in empdept_clustered.execute("SELECT DNO FROM EMP").rows
        ]
        assert dnos == sorted(dnos)


class TestGenerator:
    def test_build_database(self):
        spec = [
            TableSpec(
                name="T1",
                rows=100,
                columns=[ColumnSpec("TID", 200), ColumnSpec("ATTR", 10)],
                indexes=[IndexSpec("T1_ATTR", ["ATTR"])],
            )
        ]
        db = build_database(spec, seed=1)
        assert db.execute("SELECT COUNT(*) FROM T1").scalar() == 100
        assert db.catalog.index("T1_ATTR") is not None
        assert db.catalog.relation_stats("T1").ncard == 100

    def test_chain_spec_shapes(self):
        rng = random.Random(2)
        tables = random_chain_spec(4, rng)
        assert len(tables) == 4
        # Neighbouring tables share a join column.
        assert any(c.name == "J1" for c in tables[0].columns)
        assert any(c.name == "J1" for c in tables[1].columns)
        assert any(c.name == "J3" for c in tables[3].columns)

    def test_chain_query_text(self):
        rng = random.Random(2)
        tables = random_chain_spec(3, rng)
        sql = chain_join_query(tables, [("T1", "ATTR", 5)])
        assert "T1.J1 = T2.J1" in sql
        assert "T2.J2 = T3.J2" in sql
        assert "T1.ATTR = 5" in sql

    def test_chain_database_executes(self):
        rng = random.Random(7)
        tables = random_chain_spec(3, rng, min_rows=30, max_rows=60)
        db = build_database(tables, seed=7)
        sql = random_select_query(tables, rng)
        result = db.execute(sql)
        assert result.columns  # ran to completion

    def test_generator_deterministic(self):
        queries = []
        for __ in range(2):
            rng = random.Random(3)
            tables = random_chain_spec(3, rng)
            queries.append(random_select_query(tables, rng))
        assert queries[0] == queries[1]
