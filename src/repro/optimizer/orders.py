"""Interesting orders and order equivalence classes (Sections 4-5).

A tuple order is *interesting* if it is required by GROUP BY or ORDER BY, or
if it is on a join column (merge joins consume such orders).  Columns linked
by equi-join predicates belong to one *order equivalence class*: given
``E.DNO = D.DNO`` and ``D.DNO = F.DNO``, an order on any of the three serves
a merge on any other, so the optimizer saves only the best solution per
class rather than per column.

Orders are canonicalized to tuples of class ids, truncated to the longest
prefix that is still interesting; two plans whose orders differ only beyond
that prefix are interchangeable and the cheaper one wins.

Canonical keys are *interned*: :meth:`InterestingOrders.canonicalize`
memoizes its result per produced order and always hands back the same
tuple object for equal keys.  The join search canonicalizes once per
candidate plan, so interning turns the hot path's repeated
canonicalization into one dict hit and makes equal keys
identity-comparable (dict probes on interned keys short-circuit on
``is`` before falling back to ``==``).
"""

from __future__ import annotations

from .bound import BoundColumn, BoundQueryBlock
from .predicates import BooleanFactor

ColumnKey = tuple[str, int]  # (alias, column position)
OrderKey = tuple[int, ...]  # canonical: tuple of equivalence-class ids

UNORDERED: OrderKey = ()


class InterestingOrders:  # concurrency: statement-scoped
    """Equivalence classes plus the set of orders worth keeping plans for."""

    def __init__(
        self,
        block: BoundQueryBlock,
        factors: list[BooleanFactor],
        extra_single_columns: list[ColumnKey] | None = None,
    ):
        self._parent: dict[ColumnKey, ColumnKey] = {}
        self._class_ids: dict[ColumnKey, int] = {}
        self._next_class_id = 1

        join_columns: list[ColumnKey] = []
        for factor in factors:
            if factor.join is not None and factor.join.is_equijoin:
                left = _key(factor.join.left)
                right = _key(factor.join.right)
                self._union(left, right)
                join_columns.extend((left, right))
        # Columns referenced by correlated subqueries: an order on them
        # makes consecutive re-evaluations skippable (§6), so plans
        # producing that order are worth remembering.
        join_columns.extend(extra_single_columns or [])

        # Interesting sequences: ORDER BY and GROUP BY column lists.
        self._sequences: list[OrderKey] = []
        if block.order_by and all(not descending for __, descending in block.order_by):
            self._sequences.append(
                tuple(self.class_of(_key(column)) for column, __ in block.order_by)
            )
        if block.group_by:
            self._sequences.append(
                tuple(self.class_of(_key(column)) for column in block.group_by)
            )
        # Every join column defines a single-column interesting order.
        self._single_classes = {self.class_of(column) for column in join_columns}

        # Interning tables: one canonical tuple object per distinct key.
        self._interned: dict[OrderKey, OrderKey] = {UNORDERED: UNORDERED}
        self._canonical_cache: dict[OrderKey, OrderKey] = {}

    # -- class structure -------------------------------------------------------

    def _find(self, key: ColumnKey) -> ColumnKey:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self._find(parent)
        self._parent[key] = root
        return root

    def _union(self, left: ColumnKey, right: ColumnKey) -> None:
        left_root, right_root = self._find(left), self._find(right)
        if left_root != right_root:
            self._parent[right_root] = left_root

    def class_of(self, key: ColumnKey) -> int:
        """Stable small-integer id of the column's equivalence class."""
        root = self._find(key)
        if root not in self._class_ids:
            self._class_ids[root] = self._next_class_id
            self._next_class_id += 1
        return self._class_ids[root]

    def class_of_column(self, column: BoundColumn) -> int:
        """Equivalence-class id of a bound column."""
        return self.class_of(_key(column))

    # -- canonical order keys ------------------------------------------------------

    def order_key(self, columns: list[ColumnKey]) -> OrderKey:
        """Class-id tuple for a column sequence."""
        return tuple(self.class_of(column) for column in columns)

    def intern(self, key: OrderKey) -> OrderKey:
        """The canonical tuple object for ``key`` (identity-stable)."""
        interned = self._interned.get(key)
        if interned is None:
            interned = self._interned[key] = key
        return interned

    def canonicalize(self, produced: OrderKey) -> OrderKey:
        """Truncate a produced order to its longest interesting prefix.

        An order whose very first class is uninteresting collapses to
        UNORDERED; otherwise we keep the prefix while it can still serve
        some interesting sequence or single-column order.  Results are
        memoized and interned: equal inputs return the identical tuple.
        """
        cached = self._canonical_cache.get(produced)
        if cached is not None:
            return cached
        kept: list[int] = []
        for position, class_id in enumerate(produced):
            prefix = tuple(kept) + (class_id,)
            if any(
                sequence[: len(prefix)] == prefix for sequence in self._sequences
            ):
                kept.append(class_id)
                continue
            if position == 0 and class_id in self._single_classes:
                kept.append(class_id)
                continue
            break
        result = self.intern(tuple(kept))
        self._canonical_cache[self.intern(produced)] = result
        return result

    def satisfies(self, produced: OrderKey, required: OrderKey) -> bool:
        """True when a produced order subsumes the required one (prefix rule)."""
        return produced[: len(required)] == required

    def required_for_block(self, block: BoundQueryBlock) -> OrderKey:
        """The order the final plan must deliver before projection.

        Grouping needs the group columns in sequence; otherwise ORDER BY
        (all-ascending) is the requirement.  Descending orders are always
        produced by an explicit sort, so they impose no access-path order.
        """
        if block.group_by:
            return tuple(
                self.class_of(_key(column)) for column in block.group_by
            )
        if block.order_by and all(not desc for __, desc in block.order_by):
            return tuple(
                self.class_of(_key(column)) for column, __ in block.order_by
            )
        return UNORDERED


def _key(column: BoundColumn) -> ColumnKey:
    return (column.alias, column.position)
