"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql import TokenType, tokenize


def kinds(sql):
    return [token.type for token in tokenize(sql)][:-1]  # drop EOF


def values(sql):
    return [token.value for token in tokenize(sql)][:-1]


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert all(t.matches_keyword("SELECT") for t in tokens[:-1])

    def test_identifiers_uppercased(self):
        assert values("emp dept") == ["EMP", "DEPT"]

    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.INTEGER
        assert token.value == 42

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.type is TokenType.FLOAT
        assert token.value == 3.25

    def test_string_preserves_case(self):
        token = tokenize("'San Jose'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "San Jose"

    def test_string_escape(self):
        assert tokenize("'o''brien'")[0].value == "o'brien"

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("x")[-1].type is TokenType.EOF


class TestSymbols:
    @pytest.mark.parametrize(
        "text,symbol",
        [
            ("<=", "<="),
            (">=", ">="),
            ("<>", "<>"),
            ("!=", "<>"),  # normalized
            ("=", "="),
            ("<", "<"),
            (">", ">"),
            ("(", "("),
            (")", ")"),
            (",", ","),
            ("*", "*"),
            ("+", "+"),
            ("-", "-"),
            ("/", "/"),
        ],
    )
    def test_symbol(self, text, symbol):
        token = tokenize(text)[0]
        assert token.type is TokenType.SYMBOL
        assert token.value == symbol

    def test_qualified_name_dot(self):
        assert values("EMP.DNO") == ["EMP", ".", "DNO"]

    def test_number_then_qualified(self):
        # The dot after a number must not be swallowed as a decimal point
        # when it is part of ``alias.column`` context... but ``1.`` itself
        # is valid and re-attaches the dot.
        assert values("T1.DNO") == ["T1", ".", "DNO"]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert values("SELECT -- all\n X") == ["SELECT", "X"]

    def test_comment_at_end(self):
        assert values("X -- trailing") == ["X"]

    def test_newlines_and_tabs(self):
        assert values("a\n\tb\r\nc") == ["A", "B", "C"]


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexerError):
            tokenize("a ; b")

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_malformed_number(self):
        with pytest.raises(LexerError):
            tokenize("1.2.3")

    def test_error_carries_position(self):
        with pytest.raises(LexerError) as info:
            tokenize("abc @")
        assert info.value.position == 4
