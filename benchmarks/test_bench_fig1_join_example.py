"""E3 — Figure 1: the paper's worked JOIN example, planned and executed.

"Retrieve the name, salary, job title, and department name of employees
who are clerks and work for departments in Denver."
"""

from conftest import measure_cold, weighted
from repro.optimizer.explain import plan_summary
from repro.workloads import FIG1_QUERY


def test_fig1_join_example(empdept, report, benchmark):
    planned = empdept.plan(FIG1_QUERY)

    def run():
        return measure_cold(empdept, planned)

    measured, result = benchmark(run)

    report.line("E3 / Figure 1 — the EMP/DEPT/JOB example")
    report.line(FIG1_QUERY)
    report.line()
    report.line(f"chosen plan: {plan_summary(planned.root)}")
    report.line(
        f"predicted: {planned.estimated_cost.pages:.1f} pages "
        f"+ W*{planned.estimated_cost.rsi:.0f} RSI "
        f"= {planned.estimated_total():.2f}"
    )
    report.line(
        f"measured:  {measured.page_fetches} pages "
        f"+ W*{measured.rsi_calls} RSI "
        f"= {weighted(measured, planned.w):.2f}"
    )
    report.line(f"result: {len(result.rows)} Denver clerks")
    assert len(result.rows) > 0
    # The prediction should be within an order of magnitude of the
    # measurement ("costs predicted ... often not accurate in absolute
    # value", §7 — TITLE and LOC carry default selectivity guesses here).
    ratio = weighted(measured, planned.w) / planned.estimated_total()
    report.line(f"measured / predicted = {ratio:.2f}")
    assert 0.1 < ratio < 10.0
