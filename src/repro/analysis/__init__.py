"""Static verification of the optimizer and the codebase itself.

Selinger-style optimizers fail *silently*: a wrong selectivity clamp or a
bad prune in the DP search still produces a plan — just a worse one.  This
package proves, without executing anything, that every emitted plan and
every cost computation obeys the paper's invariants:

- :mod:`repro.analysis.plan_check` walks a plan tree and asserts
  structural invariants (catalog references resolve, column bindings bind,
  merge inputs are ordered, predicates partition the WHERE clause).
- :mod:`repro.analysis.cost_audit` re-derives TABLE 1 / TABLE 2
  quantities and checks the cost model's algebraic invariants, including
  an audit of the DP search's pruning decisions.
- :mod:`repro.analysis.lint` is a custom ``ast``-based pass enforcing
  project rules over ``src/repro`` (no float ``==`` in cost code, no
  mutable default arguments, counters mutated only inside ``rss/``,
  exhaustive plan-node dispatch in every plan walker).
- :mod:`repro.analysis.dataflow` parses the whole package into a symbol
  table, call graph, and mutation records — the substrate for the
  whole-program passes (including the dead-code pass).
- :mod:`repro.analysis.effects` infers per-function effect signatures
  (pure / reads-global / writes-global / mutates-param / mutates-self /
  IO) and propagates them transitively through the call graph.
- :mod:`repro.analysis.concurrency` consumes the graph and signatures to
  produce the shared-mutable-state report: every interference point the
  ROADMAP's parallelism items must guard, classified and gated by the
  committed ``concurrency_baseline.toml``.

Everything is exposed through ``repro check
[--plans|--costs|--lint|--storage|--fusion|--effects|--concurrency|--dead-code]``
and, for plan checking, through the ``REPRO_CHECK=1`` environment flag
which validates every ``plan_query()`` result at planning time.
"""

from __future__ import annotations

from .concurrency import ConcurrencyReport, Finding, analyze_concurrency
from .cost_audit import audit_cost_model, audit_search_stats, audit_statement
from .dataflow import ProgramGraph, find_dead_code
from .effects import EffectSignature, infer_effects
from .lint import lint_repo
from .plan_check import (
    PlanCheckError,
    Violation,
    check_plan,
    check_statement,
    verify_planned,
)

__all__ = [
    "ConcurrencyReport",
    "EffectSignature",
    "Finding",
    "PlanCheckError",
    "ProgramGraph",
    "Violation",
    "analyze_concurrency",
    "audit_cost_model",
    "audit_search_stats",
    "audit_statement",
    "check_plan",
    "check_statement",
    "find_dead_code",
    "infer_effects",
    "lint_repo",
    "verify_planned",
]
