"""OrderKey interning and memoized canonicalization.

The join search canonicalizes an order key per candidate plan; the
interning layer in :class:`InterestingOrders` must return the *identical*
tuple object for equal keys (so dict probes short-circuit on identity)
without ever changing which prefix survives canonicalization.
"""

from __future__ import annotations

from repro.catalog import Catalog, RelationStats
from repro.datatypes import INTEGER
from repro.optimizer.binder import Binder
from repro.optimizer.orders import UNORDERED, InterestingOrders
from repro.optimizer.predicates import to_cnf_factors
from repro.sql import parse_statement


def orders_for(sql: str) -> InterestingOrders:
    catalog = Catalog()
    for name in ("T1", "T2", "T3"):
        catalog.create_table(
            name, [("ID", INTEGER), ("A", INTEGER), ("B", INTEGER)]
        )
        catalog.set_relation_stats(name, RelationStats(100, 4, 1.0))
    block = Binder(catalog).bind(parse_statement(sql))
    factors = to_cnf_factors(block.where, block)
    return InterestingOrders(block, factors)


CHAIN = "SELECT * FROM T1, T2, T3 WHERE T1.A = T2.A AND T2.B = T3.B"


def test_intern_returns_identical_object():
    orders = orders_for(CHAIN)
    key = orders.intern((1, 2))
    assert orders.intern((1, 2)) is key
    # A structurally equal but distinct tuple maps to the first object.
    other = tuple([1, 2])
    assert other is not key
    assert orders.intern(other) is key


def test_intern_unordered_is_the_module_constant():
    orders = orders_for(CHAIN)
    assert orders.intern(()) is UNORDERED


def test_canonicalize_memoized_and_interned():
    orders = orders_for(CHAIN)
    block = orders_for(CHAIN)  # independent instance: separate tables
    del block
    first = orders.canonicalize((1,))
    again = orders.canonicalize(tuple([1]))
    assert again is first  # same object, not merely equal


def test_canonicalize_results_agree_with_uncached_semantics():
    orders = orders_for(CHAIN)
    # Join columns each form a single-column interesting order...
    single = orders.canonicalize((1,))
    assert single == (1,)
    # ...but an uninteresting first class collapses to UNORDERED.
    assert orders.canonicalize((99,)) is UNORDERED
    # A longer order truncates to its interesting prefix; repeated calls
    # return the identical object.
    truncated = orders.canonicalize((1, 99))
    assert truncated == (1,)
    assert truncated is single


def test_canonicalize_keeps_interesting_sequences():
    orders = orders_for(
        "SELECT A, B FROM T1 WHERE T1.A = 1 ORDER BY A, B"
    )
    block_key = orders.order_key([("T1", 1), ("T1", 2)])
    kept = orders.canonicalize(block_key)
    assert kept == block_key  # the full ORDER BY sequence is interesting
    assert orders.canonicalize(block_key) is kept


def test_distinct_keys_do_not_collide():
    orders = orders_for(CHAIN)
    a = orders.canonicalize((1,))
    b = orders.canonicalize((2,))
    assert a is not b and a != b
