"""Corner cases across the whole query stack."""

import pytest

from repro import Database, SemanticError
from repro.workloads import load_rows


@pytest.fixture
def tiny(db):
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
    load_rows(db, "T", [(1, 10), (2, 20), (3, 30)])
    db.execute("UPDATE STATISTICS")
    return db


class TestConstantPredicates:
    def test_true_constant(self, tiny):
        assert len(tiny.execute("SELECT * FROM T WHERE 1 = 1").rows) == 3

    def test_false_constant(self, tiny):
        assert tiny.execute("SELECT * FROM T WHERE 1 = 2").rows == []

    def test_constant_mixed_with_real(self, tiny):
        result = tiny.execute("SELECT A FROM T WHERE 1 = 1 AND A > 1")
        assert sorted(r[0] for r in result.rows) == [2, 3]

    def test_constant_arithmetic(self, tiny):
        result = tiny.execute("SELECT A FROM T WHERE 2 + 2 = 4")
        assert len(result.rows) == 3


class TestExpressionQueries:
    def test_select_constant_expression(self, tiny):
        result = tiny.execute("SELECT 41 + 1 FROM T WHERE A = 1")
        assert result.rows == [(42,)]

    def test_arithmetic_on_both_sides(self, tiny):
        result = tiny.execute("SELECT A FROM T WHERE A * 10 = B")
        assert sorted(r[0] for r in result.rows) == [1, 2, 3]

    def test_division_produces_float(self, tiny):
        result = tiny.execute("SELECT B / A FROM T WHERE A = 2")
        assert result.rows == [(10.0,)]

    def test_division_by_zero_raises(self, tiny):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            tiny.execute("SELECT B / (A - 1) FROM T")


class TestDeepBooleanTrees:
    def test_nested_parentheses(self, tiny):
        result = tiny.execute(
            "SELECT A FROM T WHERE ((A = 1 OR A = 2) AND (B = 20 OR B = 30)) "
            "OR (NOT (A < 3))"
        )
        assert sorted(r[0] for r in result.rows) == [2, 3]

    def test_double_negation(self, tiny):
        result = tiny.execute("SELECT A FROM T WHERE NOT NOT A = 1")
        assert result.rows == [(1,)]

    def test_many_ors_on_one_column(self, tiny):
        clauses = " OR ".join(f"A = {i}" for i in range(-5, 3))
        result = tiny.execute(f"SELECT A FROM T WHERE {clauses}")
        assert sorted(r[0] for r in result.rows) == [1, 2]

    def test_wide_cnf_blowup_stays_correct(self, tiny):
        # (a AND b) OR (c AND d) distributes to four conjuncts.
        result = tiny.execute(
            "SELECT A FROM T WHERE (A = 1 AND B = 10) OR (A = 3 AND B = 30)"
        )
        assert sorted(r[0] for r in result.rows) == [1, 3]


class TestSelfJoins:
    def test_triangle_self_join(self, db):
        db.execute("CREATE TABLE N (SRC INTEGER, DST INTEGER)")
        load_rows(db, "N", [(1, 2), (2, 3), (3, 1), (1, 3)])
        db.execute("UPDATE STATISTICS")
        result = db.execute(
            "SELECT X.SRC FROM N X, N Y, N Z "
            "WHERE X.DST = Y.SRC AND Y.DST = Z.SRC AND Z.DST = X.SRC"
        )
        # Triangles: 1->2->3->1 (three rotations).
        assert sorted(r[0] for r in result.rows) == [1, 2, 3]

    def test_self_join_aliases_independent(self, tiny):
        result = tiny.execute(
            "SELECT X.A, Y.A FROM T X, T Y WHERE X.A < Y.A"
        )
        assert len(result.rows) == 3


class TestEmptyAndDegenerate:
    def test_join_with_empty_side(self, tiny):
        tiny.execute("CREATE TABLE EMPTYT (A INTEGER)")
        result = tiny.execute(
            "SELECT T.A FROM T, EMPTYT WHERE T.A = EMPTYT.A"
        )
        assert result.rows == []

    def test_order_by_on_empty_result(self, tiny):
        result = tiny.execute("SELECT A FROM T WHERE A > 99 ORDER BY A")
        assert result.rows == []

    def test_distinct_on_empty(self, tiny):
        assert tiny.execute("SELECT DISTINCT A FROM T WHERE A > 99").rows == []

    def test_single_row_table_everything(self, db):
        db.execute("CREATE TABLE ONE (X INTEGER)")
        db.execute("INSERT INTO ONE VALUES (7)")
        db.execute("UPDATE STATISTICS")
        assert db.execute(
            "SELECT X FROM ONE WHERE X BETWEEN 0 AND 10 ORDER BY X"
        ).rows == [(7,)]

    def test_varchar_boundary_roundtrip(self, db):
        db.execute("CREATE TABLE S (V VARCHAR(5))")
        db.execute("INSERT INTO S VALUES ('abcde')")
        assert db.execute("SELECT V FROM S").rows == [("abcde",)]
        with pytest.raises(SemanticError):
            db.execute("INSERT INTO S VALUES ('abcdef')")


class TestBetweenAndRanges:
    def test_between_inclusive_both_ends(self, tiny):
        result = tiny.execute("SELECT A FROM T WHERE A BETWEEN 1 AND 3")
        assert len(result.rows) == 3

    def test_reversed_between_is_empty(self, tiny):
        assert tiny.execute("SELECT A FROM T WHERE A BETWEEN 3 AND 1").rows == []

    def test_range_with_index(self, db):
        db.execute("CREATE TABLE R (K INTEGER)")
        load_rows(db, "R", [(i,) for i in range(100)])
        db.execute("CREATE INDEX R_K ON R (K)")
        db.execute("UPDATE STATISTICS")
        result = db.execute("SELECT K FROM R WHERE K >= 90 AND K < 95")
        assert sorted(r[0] for r in result.rows) == [90, 91, 92, 93, 94]
