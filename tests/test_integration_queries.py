"""Differential integration tests: SQL results vs a Python reference.

The reference implementation loads every table into memory with plain
segment scans and evaluates each query's semantics with straightforward
Python comprehensions, independently of the optimizer and operators.  Every
query must agree regardless of the plan chosen.
"""

import pytest

from repro.workloads import FIG1_QUERY


@pytest.fixture(scope="module")
def data(empdept):
    emp = empdept.execute("SELECT * FROM EMP").rows
    dept = empdept.execute("SELECT * FROM DEPT").rows
    job = empdept.execute("SELECT * FROM JOB").rows
    return {
        "EMP": emp,  # (ENO, NAME, DNO, JOB, SAL)
        "DEPT": dept,  # (DNO, DNAME, LOC)
        "JOB": job,  # (JOB, TITLE)
    }


class TestSelections:
    def test_equality(self, empdept, data):
        got = sorted(empdept.execute("SELECT NAME FROM EMP WHERE DNO = 7").rows)
        want = sorted((e[1],) for e in data["EMP"] if e[2] == 7)
        assert got == want

    def test_range(self, empdept, data):
        got = sorted(
            empdept.execute("SELECT ENO FROM EMP WHERE SAL > 800.0").rows
        )
        want = sorted((e[0],) for e in data["EMP"] if e[4] > 800.0)
        assert got == want

    def test_between(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT ENO FROM EMP WHERE SAL BETWEEN 200.0 AND 300.0"
            ).rows
        )
        want = sorted((e[0],) for e in data["EMP"] if 200.0 <= e[4] <= 300.0)
        assert got == want

    def test_in_list(self, empdept, data):
        got = sorted(
            empdept.execute("SELECT ENO FROM EMP WHERE DNO IN (1, 3, 5)").rows
        )
        want = sorted((e[0],) for e in data["EMP"] if e[2] in (1, 3, 5))
        assert got == want

    def test_or_across_columns(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT ENO FROM EMP WHERE DNO = 2 OR SAL < 150.0"
            ).rows
        )
        want = sorted(
            (e[0],) for e in data["EMP"] if e[2] == 2 or e[4] < 150.0
        )
        assert got == want

    def test_negation(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT ENO FROM EMP WHERE NOT (DNO = 2 OR DNO = 3)"
            ).rows
        )
        want = sorted((e[0],) for e in data["EMP"] if e[2] not in (2, 3))
        assert got == want

    def test_like(self, empdept, data):
        got = sorted(
            empdept.execute("SELECT NAME FROM EMP WHERE NAME LIKE 'EMP1%'").rows
        )
        want = sorted((e[1],) for e in data["EMP"] if e[1].startswith("EMP1"))
        assert got == want


class TestJoins:
    def test_two_way_join(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO"
            ).rows
        )
        want = sorted(
            (e[1], d[1])
            for e in data["EMP"]
            for d in data["DEPT"]
            if e[2] == d[0]
        )
        assert got == want

    def test_fig1_three_way_join(self, empdept, data):
        got = sorted(empdept.execute(FIG1_QUERY).rows)
        want = sorted(
            (e[1], j[1], e[4], d[1])
            for e in data["EMP"]
            for d in data["DEPT"]
            for j in data["JOB"]
            if j[1] == "CLERK"
            and d[2] == "DENVER"
            and e[2] == d[0]
            and e[3] == j[0]
        )
        assert got == want

    def test_join_with_extra_selection(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT NAME FROM EMP, DEPT "
                "WHERE EMP.DNO = DEPT.DNO AND LOC = 'NYC' AND SAL > 500.0"
            ).rows
        )
        want = sorted(
            (e[1],)
            for e in data["EMP"]
            for d in data["DEPT"]
            if e[2] == d[0] and d[2] == "NYC" and e[4] > 500.0
        )
        assert got == want

    def test_cartesian_product_count(self, empdept, data):
        got = empdept.execute("SELECT DEPT.DNO, JOB.JOB FROM DEPT, JOB")
        assert len(got.rows) == len(data["DEPT"]) * len(data["JOB"])

    def test_non_equijoin(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT DEPT.DNO, JOB.JOB FROM DEPT, JOB "
                "WHERE DEPT.DNO < JOB.JOB"
            ).rows
        )
        want = sorted(
            (d[0], j[0])
            for d in data["DEPT"]
            for j in data["JOB"]
            if d[0] < j[0]
        )
        assert got == want


class TestAggregation:
    def test_group_counts(self, empdept, data):
        got = dict(
            empdept.execute(
                "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO"
            ).rows
        )
        want = {}
        for e in data["EMP"]:
            want[e[2]] = want.get(e[2], 0) + 1
        assert got == want

    def test_group_avg(self, empdept, data):
        got = dict(
            empdept.execute("SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO").rows
        )
        groups = {}
        for e in data["EMP"]:
            groups.setdefault(e[2], []).append(e[4])
        for dno, values in groups.items():
            assert got[dno] == pytest.approx(sum(values) / len(values))

    def test_having_filters_groups(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT JOB, COUNT(*) FROM EMP GROUP BY JOB "
                "HAVING COUNT(*) > 80"
            ).rows
        )
        counts = {}
        for e in data["EMP"]:
            counts[e[3]] = counts.get(e[3], 0) + 1
        want = sorted(
            (job, count) for job, count in counts.items() if count > 80
        )
        assert got == want

    def test_aggregate_over_join(self, empdept, data):
        got = empdept.execute(
            "SELECT COUNT(*) FROM EMP, DEPT "
            "WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER'"
        ).scalar()
        want = sum(
            1
            for e in data["EMP"]
            for d in data["DEPT"]
            if e[2] == d[0] and d[2] == "DENVER"
        )
        assert got == want


class TestOrderingAndDistinct:
    def test_order_by_two_keys(self, empdept, data):
        got = empdept.execute(
            "SELECT DNO, ENO FROM EMP ORDER BY DNO, ENO"
        ).rows
        want = sorted((e[2], e[0]) for e in data["EMP"])
        assert got == want

    def test_order_by_desc(self, empdept, data):
        got = empdept.execute("SELECT SAL FROM EMP ORDER BY SAL DESC").rows
        want = sorted(((e[4],) for e in data["EMP"]), reverse=True)
        assert got == want

    def test_distinct_pairs(self, empdept, data):
        got = sorted(
            empdept.execute("SELECT DISTINCT DNO, JOB FROM EMP").rows
        )
        want = sorted({(e[2], e[3]) for e in data["EMP"]})
        assert got == want


class TestSubqueryQueries:
    def test_above_average_salaries(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT ENO FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)"
            ).rows
        )
        avg = sum(e[4] for e in data["EMP"]) / len(data["EMP"])
        want = sorted((e[0],) for e in data["EMP"] if e[4] > avg)
        assert got == want

    def test_in_subquery_with_filter(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT ENO FROM EMP WHERE DNO IN "
                "(SELECT DNO FROM DEPT WHERE LOC = 'DENVER')"
            ).rows
        )
        denver = {d[0] for d in data["DEPT"] if d[2] == "DENVER"}
        want = sorted((e[0],) for e in data["EMP"] if e[2] in denver)
        assert got == want

    def test_correlated_department_average(self, empdept, data):
        got = sorted(
            empdept.execute(
                "SELECT ENO FROM EMP X WHERE SAL > "
                "(SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)"
            ).rows
        )
        groups = {}
        for e in data["EMP"]:
            groups.setdefault(e[2], []).append(e[4])
        averages = {k: sum(v) / len(v) for k, v in groups.items()}
        want = sorted((e[0],) for e in data["EMP"] if e[4] > averages[e[2]])
        assert got == want
