"""Plan operators: iterators that pull rows through the chosen access paths.

Each plan node type has an ``_iter_*`` function; :func:`iterate` dispatches.
Operators receive an :class:`ExecContext` (runtime services plus the
current block's alias schemas) and an optional outer :class:`EvalEnv`
chain carrying enclosing blocks' candidate tuples for correlation and
nested-loop probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..datatypes import DataType, compare_values
from ..errors import ExecutionError
from ..optimizer.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    IndexAccess,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SegmentAccess,
    SortNode,
    walk_plan,
)
from ..optimizer.predicates import SargExpression
from ..rss.sargs import SargPredicate, Sargs
from ..sql import ast
from .evaluator import EvalEnv, evaluate, predicate_holds
from .rows import AGGREGATE_ALIAS, OUTPUT_ALIAS, Row


@dataclass
class ExecContext:
    """Per-block execution context."""

    runtime: object  # Runtime (duck-typed to avoid an import cycle)
    schemas: dict[str, list[DataType]]

    @property
    def storage(self):
        """The storage engine behind this execution."""
        return self.runtime.storage  # type: ignore[attr-defined]

    def env(self, row: Row, outer: EvalEnv | None) -> EvalEnv:
        """An evaluation environment for one row plus the enclosing chain."""
        return EvalEnv(row=row, runtime=self.runtime, outer=outer)


def iterate(
    node: PlanNode, ctx: ExecContext, outer: EvalEnv | None = None
) -> Iterator[Row]:
    """Execute a plan node, yielding composite rows."""
    if isinstance(node, ScanNode):
        return _iter_scan(node, ctx, outer)
    if isinstance(node, FilterNode):
        return _iter_filter(node, ctx, outer)
    if isinstance(node, NestedLoopJoinNode):
        return _iter_nested_loop(node, ctx, outer)
    if isinstance(node, MergeJoinNode):
        return _iter_merge_join(node, ctx, outer)
    if isinstance(node, SortNode):
        return _iter_sort(node, ctx, outer)
    if isinstance(node, AggregateNode):
        return _iter_aggregate(node, ctx, outer)
    if isinstance(node, ProjectNode):
        return _iter_project(node, ctx, outer)
    if isinstance(node, DistinctNode):
        return _iter_distinct(node, ctx, outer)
    raise ExecutionError(f"no operator for plan node {type(node).__name__}")


# ---------------------------------------------------------------------------
# scans
# ---------------------------------------------------------------------------


class _ConjunctiveSargs:
    """AND of several DNF search arguments (one per sargable factor)."""

    def __init__(self, parts: list[Sargs]):
        self._parts = parts

    def matches(self, values: tuple) -> bool:
        """Whether a tuple's values satisfy this expression."""
        return all(part.matches(values) for part in self._parts)


_EMPTY_MARKER = object()


def _iter_scan(
    node: ScanNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    value_env = ctx.env(Row(), outer)
    sargs = _build_sargs(node.sargs, value_env)
    storage = ctx.storage

    if isinstance(node.access, SegmentAccess):
        scan = storage.segment_scan(node.table, sargs)
    else:
        access = node.access
        bounds = _evaluate_bounds(access, value_env)
        if bounds is _EMPTY_MARKER:
            return  # a NULL bound can never be satisfied
        low, high = bounds  # type: ignore[misc]
        scan = storage.index_scan(
            access.index,
            node.table,
            low=low,
            high=high,
            low_inclusive=access.low_inclusive,
            high_inclusive=access.high_inclusive,
            sargs=sargs,
        )
    for tid, values in scan:
        row = Row(values={node.alias: values}, tids={node.alias: tid})
        if node.residual:
            env = ctx.env(row, outer)
            if not all(predicate_holds(pred, env) for pred in node.residual):
                continue
        yield row


def _build_sargs(
    expressions: list[SargExpression], env: EvalEnv
) -> _ConjunctiveSargs | None:
    if not expressions:
        return None
    parts: list[Sargs] = []
    for expression in expressions:
        groups: list[list[SargPredicate]] = []
        for group in expression.groups:
            groups.append(
                [
                    SargPredicate(
                        column_position=pred.column.position,
                        op=pred.op,
                        value=evaluate(pred.value, env),
                    )
                    for pred in group
                ]
            )
        parts.append(Sargs(groups))
    return _ConjunctiveSargs(parts)


def _evaluate_bounds(access: IndexAccess, env: EvalEnv):
    low = tuple(evaluate(expr, env) for expr in access.low)
    high = tuple(evaluate(expr, env) for expr in access.high)
    if any(value is None for value in low) or any(value is None for value in high):
        return _EMPTY_MARKER
    return (low or None, high or None)


# ---------------------------------------------------------------------------
# filters and joins
# ---------------------------------------------------------------------------


def _iter_filter(
    node: FilterNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    for row in iterate(node.child, ctx, outer):
        env = ctx.env(row, outer)
        if all(predicate_holds(pred, env) for pred in node.predicates):
            yield row


def _iter_nested_loop(
    node: NestedLoopJoinNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    for outer_row in iterate(node.outer, ctx, outer):
        probe_env = ctx.env(outer_row, outer)
        for inner_row in iterate(node.inner, ctx, probe_env):
            merged = outer_row.merged(inner_row)
            if node.residual:
                env = ctx.env(merged, outer)
                if not all(predicate_holds(p, env) for p in node.residual):
                    continue
            yield merged


def _iter_merge_join(
    node: MergeJoinNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    """Synchronized merging scans with join-group rewind.

    The inner's current group is buffered; when consecutive outer tuples
    carry the same join value the group is replayed, and each replayed
    tuple is counted as an RSI call — that re-retrieval is exactly what the
    cost formulas charge for.
    """
    counters = ctx.storage.counters
    inner_iter = iterate(node.inner, ctx, outer)
    inner_current = next(inner_iter, None)
    group: list[Row] = []
    group_key: object = _EMPTY_MARKER
    group_served_once = False

    def inner_key(row: Row) -> object:
        return row.values[node.inner_column.alias][node.inner_column.position]

    for outer_row in iterate(node.outer, ctx, outer):
        outer_values = outer_row.values[node.outer_column.alias]
        outer_key = outer_values[node.outer_column.position]
        if outer_key is None:
            continue  # NULL join keys never match
        if group_key is not _EMPTY_MARKER and compare_values(outer_key, group_key) == 0:
            replay = True
        else:
            # Advance the inner scan to the first key >= outer_key.
            while inner_current is not None:
                key = inner_key(inner_current)
                if key is not None and compare_values(key, outer_key) >= 0:
                    break
                inner_current = next(inner_iter, None)
            group = []
            group_key = outer_key
            group_served_once = False
            while inner_current is not None:
                key = inner_key(inner_current)
                if key is None or compare_values(key, outer_key) != 0:
                    break
                group.append(inner_current)
                inner_current = next(inner_iter, None)
            replay = False
        for inner_row in group:
            if replay or group_served_once:
                # Re-retrieving a buffered group tuple is an RSI call.
                counters.count_rsi_call()
            merged = outer_row.merged(inner_row)
            if node.residual:
                env = ctx.env(merged, outer)
                if not all(predicate_holds(p, env) for p in node.residual):
                    continue
            yield merged
        group_served_once = True


# ---------------------------------------------------------------------------
# sorting
# ---------------------------------------------------------------------------


def _sort_rows(rows: list[Row], keys) -> list[Row]:
    """Stable multi-key sort with NULLs first and per-key direction."""
    ordered = list(rows)
    for column, descending in reversed(list(keys)):
        def sort_key(row: Row, column=column):
            value = row.values[column.alias][column.position]
            return (0, 0) if value is None else (1, value)

        ordered.sort(key=sort_key, reverse=descending)
    return ordered


def _iter_sort(
    node: SortNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    """Sort into a temporary list, spilling to multi-pass runs when the
    input exceeds a buffer-pool-sized workspace (§5: "several passes")."""
    from ..rss.tuples import max_record_size
    from ..sorting import workspace_rows
    from .external_sort import ExternalSorter

    child_rows = iterate(node.child, ctx, outer)
    aliases = sorted(
        {
            scan.alias
            for scan in walk_plan(node.child)
            if isinstance(scan, ScanNode)
        }
    )
    materializable = aliases and all(alias in ctx.schemas for alias in aliases)
    has_aggregate = any(
        isinstance(n, AggregateNode) for n in walk_plan(node.child)
    )
    if not materializable or has_aggregate:
        # Post-aggregation (pseudo-alias) sorts stay in memory.
        yield from _sort_rows(list(child_rows), node.keys)
        return
    schema = [(alias, ctx.schemas[alias]) for alias in aliases]
    row_bytes = sum(
        max_record_size(datatypes) for __, datatypes in schema
    )
    sorter = ExternalSorter(
        ctx.storage,
        schema,
        node.keys,
        memory_rows=workspace_rows(ctx.storage.buffer.capacity, row_bytes),
    )
    yield from sorter.sort(child_rows)


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


class _AggState:
    """Accumulator for one aggregate call within one group."""

    def __init__(self, call: ast.FuncCall):
        self.call = call
        self.count = 0
        self.total: float | int = 0
        self.minimum: object = None
        self.maximum: object = None
        self.distinct: set | None = set() if call.distinct else None

    def add(self, value: object) -> None:
        """Fold one input value into the accumulator."""
        if self.call.argument is None:  # COUNT(*)
            self.count += 1
            return
        if value is None:
            return
        if self.distinct is not None:
            if value in self.distinct:
                return
            self.distinct.add(value)
        self.count += 1
        if self.call.name in ("SUM", "AVG"):
            self.total += value  # type: ignore[operator]
        elif self.call.name == "MIN":
            if self.minimum is None or compare_values(value, self.minimum) < 0:
                self.minimum = value
        elif self.call.name == "MAX":
            if self.maximum is None or compare_values(value, self.maximum) > 0:
                self.maximum = value

    def result(self) -> object:
        """The aggregate's final value for the finished group."""
        name = self.call.name
        if name == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if name == "SUM":
            return self.total
        if name == "AVG":
            return self.total / self.count
        if name == "MIN":
            return self.minimum
        return self.maximum


def _iter_aggregate(
    node: AggregateNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    """Streaming aggregation over input ordered on the grouping columns."""

    def group_key(row: Row) -> tuple:
        return tuple(
            row.values[column.alias][column.position] for column in node.group_by
        )

    def emit(representative: Row, states: list[_AggState]) -> Row | None:
        results = tuple(state.result() for state in states)
        out = representative.with_alias(AGGREGATE_ALIAS, results)
        if node.having is not None:
            env = ctx.env(out, outer)
            if not predicate_holds(node.having, env):
                return None
        return out

    current_key: object = _EMPTY_MARKER
    representative: Row | None = None
    states: list[_AggState] = []
    saw_rows = False
    for row in iterate(node.child, ctx, outer):
        saw_rows = True
        key = group_key(row)
        if current_key is _EMPTY_MARKER or key != current_key:
            if representative is not None:
                out = emit(representative, states)
                if out is not None:
                    yield out
            current_key = key
            representative = row
            states = [_AggState(call) for call in node.aggregates]
        for state in states:
            env = ctx.env(row, outer)
            value = (
                None
                if state.call.argument is None
                else evaluate(state.call.argument, env)
            )
            state.add(value)
    if representative is not None:
        out = emit(representative, states)
        if out is not None:
            yield out
    elif not saw_rows and not node.group_by:
        # Aggregates over an empty input still produce one row.
        out = emit(Row(), [_AggState(call) for call in node.aggregates])
        if out is not None:
            yield out


# ---------------------------------------------------------------------------
# projection / distinct
# ---------------------------------------------------------------------------


def _iter_project(
    node: ProjectNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    for row in iterate(node.child, ctx, outer):
        env = ctx.env(row, outer)
        output = tuple(evaluate(expr, env) for expr in node.exprs)
        yield Row(values={**row.values, OUTPUT_ALIAS: output}, tids=row.tids)


def _iter_distinct(
    node: DistinctNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    seen: set[tuple] = set()
    for row in iterate(node.child, ctx, outer):
        key = row.values[OUTPUT_ALIAS]
        if key in seen:
            continue
        seen.add(key)
        yield row
