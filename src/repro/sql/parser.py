"""Recursive-descent parser for the SQL subset.

Grammar sketch (keywords case-insensitive)::

    statement    := select | insert | update | delete
                  | create_table | create_index | drop | update_stats
    select       := SELECT [DISTINCT] (STAR | item{,}) FROM table_ref{,}
                    [WHERE expr] [GROUP BY colref{,}] [HAVING expr]
                    [ORDER BY order_item{,}]
    expr         := and_expr (OR and_expr)*
    and_expr     := not_expr (AND not_expr)*
    not_expr     := NOT not_expr | predicate
    predicate    := additive [compare additive | [NOT] BETWEEN .. AND ..
                  | [NOT] IN ( subquery | literals ) | IS [NOT] NULL
                  | [NOT] LIKE string]
    additive     := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/') unary)*
    unary        := '-' unary | primary
    primary      := literal | NULL | func '(' [DISTINCT] (expr|'*') ')'
                  | colref | '(' (subquery | expr) ')'
"""

from __future__ import annotations

from ..datatypes import DataType, TypeKind
from ..errors import ParseError
from ..rss.sargs import CompareOp
from . import ast
from .lexer import Token, TokenType, tokenize

_COMPARE_OPS = {
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
}


class Parser:  # concurrency: statement-scoped
    """Parses one SQL statement from text."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._position = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._position + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches_keyword(keyword):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            raise ParseError(f"expected {keyword}, found {self._peek()}")

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().matches_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            raise ParseError(f"expected {symbol!r}, found {self._peek()}")

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return str(token.value)
        raise ParseError(f"expected identifier, found {token}")

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement from the token stream."""
        token = self._peek()
        if token.matches_keyword("SELECT"):
            statement: ast.Statement = self._select()
        elif token.matches_keyword("INSERT"):
            statement = self._insert()
        elif token.matches_keyword("UPDATE"):
            statement = self._update_or_statistics()
        elif token.matches_keyword("DELETE"):
            statement = self._delete()
        elif token.matches_keyword("CREATE"):
            statement = self._create()
        elif token.matches_keyword("DROP"):
            statement = self._drop()
        else:
            raise ParseError(f"unexpected start of statement: {token}")
        if self._peek().type is not TokenType.EOF:
            raise ParseError(f"trailing input after statement: {self._peek()}")
        return statement

    def _select(self) -> ast.SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        select_items: list[ast.SelectItem] = []
        if not self._accept_symbol("*"):
            while True:
                expr = self._expr()
                alias = None
                if self._accept_keyword("AS"):
                    alias = self._expect_ident()
                elif self._peek().type is TokenType.IDENT and not self._looks_like_from():
                    alias = self._expect_ident()
                select_items.append(ast.SelectItem(expr, alias))
                if not self._accept_symbol(","):
                    break
        self._expect_keyword("FROM")
        from_tables: list[ast.TableRef] = []
        while True:
            table_name = self._expect_ident()
            alias = table_name
            if self._peek().type is TokenType.IDENT:
                alias = self._expect_ident()
            from_tables.append(ast.TableRef(table_name, alias))
            if not self._accept_symbol(","):
                break
        where = self._expr() if self._accept_keyword("WHERE") else None
        group_by: list[ast.ColumnRef] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            while True:
                group_by.append(self._column_ref())
                if not self._accept_symbol(","):
                    break
        having = self._expr() if self._accept_keyword("HAVING") else None
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                column = self._column_ref()
                descending = False
                if self._accept_keyword("DESC"):
                    descending = True
                else:
                    self._accept_keyword("ASC")
                order_by.append(ast.OrderItem(column, descending))
                if not self._accept_symbol(","):
                    break
        return ast.SelectQuery(
            select_items=tuple(select_items),
            from_tables=tuple(from_tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            distinct=distinct,
        )

    def _looks_like_from(self) -> bool:
        # Select-item aliases are bare identifiers; FROM is a keyword, so an
        # IDENT here is always an alias.  (Kept for readability at call site.)
        return False

    def _insert(self) -> ast.InsertStmt:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table_name = self._expect_ident()
        column_names: tuple[str, ...] | None = None
        if self._accept_symbol("("):
            names = [self._expect_ident()]
            while self._accept_symbol(","):
                names.append(self._expect_ident())
            self._expect_symbol(")")
            column_names = tuple(names)
        if self._peek().matches_keyword("SELECT"):
            return ast.InsertStmt(
                table_name, column_names, source=self._select()
            )
        self._expect_keyword("VALUES")
        rows: list[tuple[ast.Expr, ...]] = []
        while True:
            self._expect_symbol("(")
            row = [self._expr()]
            while self._accept_symbol(","):
                row.append(self._expr())
            self._expect_symbol(")")
            rows.append(tuple(row))
            if not self._accept_symbol(","):
                break
        return ast.InsertStmt(table_name, column_names, tuple(rows))

    def _update_or_statistics(self) -> ast.Statement:
        self._expect_keyword("UPDATE")
        if self._accept_keyword("STATISTICS"):
            table_name = None
            if self._peek().type is TokenType.IDENT:
                table_name = self._expect_ident()
            return ast.UpdateStatisticsStmt(table_name)
        table_name = self._expect_ident()
        self._expect_keyword("SET")
        assignments: list[tuple[str, ast.Expr]] = []
        while True:
            column = self._expect_ident()
            self._expect_symbol("=")
            assignments.append((column, self._expr()))
            if not self._accept_symbol(","):
                break
        where = self._expr() if self._accept_keyword("WHERE") else None
        return ast.UpdateStmt(table_name, tuple(assignments), where)

    def _delete(self) -> ast.DeleteStmt:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table_name = self._expect_ident()
        where = self._expr() if self._accept_keyword("WHERE") else None
        return ast.DeleteStmt(table_name, where)

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        unique = self._accept_keyword("UNIQUE")
        if self._accept_keyword("TABLE"):
            if unique:
                raise ParseError("UNIQUE applies to indexes, not tables")
            return self._create_table()
        self._expect_keyword("INDEX")
        return self._create_index(unique)

    def _create_table(self) -> ast.CreateTableStmt:
        table_name = self._expect_ident()
        self._expect_symbol("(")
        columns = [self._column_spec()]
        while self._accept_symbol(","):
            columns.append(self._column_spec())
        self._expect_symbol(")")
        segment_name = None
        if self._accept_keyword("IN"):
            self._expect_keyword("SEGMENT")
            segment_name = self._expect_ident()
        return ast.CreateTableStmt(table_name, tuple(columns), segment_name)

    def _column_spec(self) -> ast.ColumnSpec:
        name = self._expect_ident()
        token = self._advance()
        if token.matches_keyword("INTEGER") or token.matches_keyword("INT"):
            return ast.ColumnSpec(name, DataType(TypeKind.INTEGER))
        if token.matches_keyword("FLOAT"):
            return ast.ColumnSpec(name, DataType(TypeKind.FLOAT))
        if token.matches_keyword("VARCHAR"):
            self._expect_symbol("(")
            length_token = self._advance()
            if length_token.type is not TokenType.INTEGER:
                raise ParseError("VARCHAR length must be an integer")
            self._expect_symbol(")")
            return ast.ColumnSpec(name, DataType(TypeKind.VARCHAR, int(length_token.value)))
        raise ParseError(f"unknown column type {token}")

    def _create_index(self, unique: bool) -> ast.CreateIndexStmt:
        index_name = self._expect_ident()
        self._expect_keyword("ON")
        table_name = self._expect_ident()
        self._expect_symbol("(")
        columns = [self._expect_ident()]
        while self._accept_symbol(","):
            columns.append(self._expect_ident())
        self._expect_symbol(")")
        clustered = self._accept_keyword("CLUSTER")
        return ast.CreateIndexStmt(
            index_name, table_name, tuple(columns), unique, clustered
        )

    def _drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            return ast.DropTableStmt(self._expect_ident())
        self._expect_keyword("INDEX")
        return ast.DropIndexStmt(self._expect_ident())

    # -- expressions --------------------------------------------------------------

    def _expr(self) -> ast.Expr:
        operands = [self._and_expr()]
        while self._accept_keyword("OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return ast.Or(tuple(operands))

    def _and_expr(self) -> ast.Expr:
        operands = [self._not_expr()]
        while self._accept_keyword("AND"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return ast.And(tuple(operands))

    def _not_expr(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expr:
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.SYMBOL and str(token.value) in _COMPARE_OPS:
            self._advance()
            op = _COMPARE_OPS[str(token.value)]
            right = self._additive()
            return ast.Comparison(op, left, right)
        negated = False
        if (
            token.matches_keyword("NOT")
            and self._peek(1).type is TokenType.KEYWORD
            and self._peek(1).value in ("BETWEEN", "IN", "LIKE")
        ):
            self._advance()
            negated = True
            token = self._peek()
        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            between = ast.Between(left, low, high)
            return ast.Not(between) if negated else between
        if self._accept_keyword("IN"):
            self._expect_symbol("(")
            if self._peek().matches_keyword("SELECT"):
                subquery = self._select()
                self._expect_symbol(")")
                predicate: ast.Expr = ast.InSubquery(left, subquery)
            else:
                values = [self._literal()]
                while self._accept_symbol(","):
                    values.append(self._literal())
                self._expect_symbol(")")
                predicate = ast.InList(left, tuple(values))
            return ast.Not(predicate) if negated else predicate
        if self._accept_keyword("LIKE"):
            pattern_token = self._advance()
            if pattern_token.type is not TokenType.STRING:
                raise ParseError("LIKE pattern must be a string literal")
            return ast.Like(left, str(pattern_token.value), negated)
        if self._accept_keyword("IS"):
            is_not = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(left, is_not)
        if negated:
            raise ParseError(f"unexpected NOT before {token}")
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            if self._accept_symbol("+"):
                left = ast.BinaryOp("+", left, self._multiplicative())
            elif self._accept_symbol("-"):
                left = ast.BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            if self._accept_symbol("*"):
                left = ast.BinaryOp("*", left, self._unary())
            elif self._accept_symbol("/"):
                left = ast.BinaryOp("/", left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._accept_symbol("-"):
            operand = self._unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.Negate(operand)
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.type in (TokenType.INTEGER, TokenType.FLOAT, TokenType.STRING):
            self._advance()
            return ast.Literal(token.value)
        if token.matches_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.type is TokenType.IDENT:
            if (
                str(token.value) in ast.AGGREGATE_FUNCTIONS
                and self._peek(1).matches_symbol("(")
            ):
                return self._func_call()
            return self._column_ref()
        if self._accept_symbol("("):
            if self._peek().matches_keyword("SELECT"):
                subquery = self._select()
                self._expect_symbol(")")
                return ast.ScalarSubquery(subquery)
            inner = self._expr()
            self._expect_symbol(")")
            return inner
        raise ParseError(f"unexpected token {token}")

    def _func_call(self) -> ast.FuncCall:
        name = self._expect_ident()
        self._expect_symbol("(")
        distinct = self._accept_keyword("DISTINCT")
        if self._accept_symbol("*"):
            if name != "COUNT":
                raise ParseError(f"{name}(*) is not valid")
            self._expect_symbol(")")
            return ast.FuncCall(name, None, distinct)
        argument = self._expr()
        self._expect_symbol(")")
        return ast.FuncCall(name, argument, distinct)

    def _column_ref(self) -> ast.ColumnRef:
        first = self._expect_ident()
        if self._accept_symbol("."):
            return ast.ColumnRef(first, self._expect_ident())
        return ast.ColumnRef(None, first)

    def _literal(self) -> ast.Literal:
        expr = self._unary()
        if not isinstance(expr, ast.Literal):
            raise ParseError("expected a literal value")
        return expr


def parse_statement(text: str) -> ast.Statement:
    """Parse one SQL statement; raises :class:`~repro.errors.ParseError`."""
    return Parser(text).parse_statement()
