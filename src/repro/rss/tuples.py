"""Byte-level tuple serialization.

A stored tuple is a contiguous byte record inside a slotted page:

====================  =====================================================
bytes                 meaning
====================  =====================================================
``u16``               relation id (segments interleave relations, so every
                      record is tagged with the relation it belongs to)
``ceil(ncols/8)``     null bitmap, bit *i* set when column *i* is NULL
per column            8-byte big-endian signed int / IEEE double, or a
                      2-byte length followed by UTF-8 bytes for VARCHAR
====================  =====================================================

NULL columns occupy no payload bytes beyond their bitmap bit.
"""

from __future__ import annotations

import struct

from ..datatypes import DataType, TypeKind
from ..errors import StorageError

_U16 = struct.Struct(">H")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


def encode_tuple(relation_id: int, values: tuple, datatypes: list[DataType]) -> bytes:
    """Serialize ``values`` (already validated) into a page record."""
    if len(values) != len(datatypes):
        raise StorageError(
            f"tuple has {len(values)} values but schema has {len(datatypes)}"
        )
    bitmap_size = (len(datatypes) + 7) // 8
    bitmap = bytearray(bitmap_size)
    parts: list[bytes] = []
    for position, (value, datatype) in enumerate(zip(values, datatypes)):
        if value is None:
            bitmap[position // 8] |= 1 << (position % 8)
            continue
        if datatype.kind is TypeKind.INTEGER:
            parts.append(_I64.pack(value))
        elif datatype.kind is TypeKind.FLOAT:
            parts.append(_F64.pack(value))
        else:
            raw = value.encode("utf-8")
            parts.append(_U16.pack(len(raw)))
            parts.append(raw)
    return _U16.pack(relation_id) + bytes(bitmap) + b"".join(parts)


def decode_tuple(record: bytes, datatypes: list[DataType]) -> tuple:
    """Deserialize a page record produced by :func:`encode_tuple`.

    The caller is expected to have matched the relation id already (use
    :func:`record_relation_id` for that); this returns only column values.
    """
    bitmap_size = (len(datatypes) + 7) // 8
    offset = 2 + bitmap_size
    bitmap = record[2 : 2 + bitmap_size]
    values: list[object] = []
    for position, datatype in enumerate(datatypes):
        if bitmap[position // 8] & (1 << (position % 8)):
            values.append(None)
            continue
        if datatype.kind is TypeKind.INTEGER:
            values.append(_I64.unpack_from(record, offset)[0])
            offset += 8
        elif datatype.kind is TypeKind.FLOAT:
            values.append(_F64.unpack_from(record, offset)[0])
            offset += 8
        else:
            (length,) = _U16.unpack_from(record, offset)
            offset += 2
            values.append(record[offset : offset + length].decode("utf-8"))
            offset += length
    return tuple(values)


def record_relation_id(record: bytes) -> int:
    """The relation id tag at the front of a stored record."""
    return _U16.unpack_from(record, 0)[0]


def max_record_size(datatypes: list[DataType]) -> int:
    """Worst-case record size for a schema; used to reject impossible tuples."""
    bitmap_size = (len(datatypes) + 7) // 8
    return 2 + bitmap_size + sum(datatype.max_encoded_size() for datatype in datatypes)
