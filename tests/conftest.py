"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads import build_empdept


@pytest.fixture
def db() -> Database:
    """A fresh, empty database."""
    return Database()


@pytest.fixture(scope="module")
def empdept() -> Database:
    """The paper's EMP/DEPT/JOB database (module-scoped; treat as read-only)."""
    return build_empdept(employees=400, departments=20, jobs=5, seed=11)


@pytest.fixture(scope="module")
def empdept_clustered() -> Database:
    """EMP/DEPT/JOB with a clustered EMP.DNO index (read-only)."""
    return build_empdept(
        employees=400, departments=20, jobs=5, seed=11, clustered_emp_dno=True
    )
