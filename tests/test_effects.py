"""Effect inference: direct atoms from the AST, viral propagation.

Each fixture tree seeds exactly one effect and asserts the signature; the
propagation tests prove the viral atoms cross call edges while the
receiver-bound ones stay confined.  The real-tree tests pin the effect
rules ``repro check --effects`` enforces on ``src/repro`` itself.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.dataflow import ProgramGraph
from repro.analysis.effects import (
    effects_summary,
    impure_functions,
    infer_effects,
)

PACKAGE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def write(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def infer(tmp_path):
    return infer_effects(ProgramGraph.build(tmp_path))


# ---------------------------------------------------------------------------
# direct effects
# ---------------------------------------------------------------------------


def test_pure_function_is_pure(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        def add(a, b):
            total = a + b
            return total
        """,
    )
    signatures = infer(tmp_path)
    assert signatures["m.py::add"].is_pure
    assert signatures["m.py::add"].describe() == "pure"


def test_global_statement_write_is_writes_global(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        COUNT = 0

        def bump():
            global COUNT
            COUNT += 1
        """,
    )
    signatures = infer(tmp_path)
    assert "writes-global" in signatures["m.py::bump"].direct


def test_container_global_mutation_is_writes_global(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        CACHE = {}

        def memo(key, value):
            CACHE[key] = value
        """,
    )
    signatures = infer(tmp_path)
    assert "writes-global" in signatures["m.py::memo"].direct


def test_reading_mutable_global_is_reads_global(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        TABLE = {"k": 1}

        def lookup(key):
            return TABLE.get(key)
        """,
    )
    signatures = infer(tmp_path)
    assert "reads-global" in signatures["m.py::lookup"].direct
    assert "writes-global" not in signatures["m.py::lookup"].direct


def test_init_writes_are_not_mutates_self(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        class Widget:
            def __init__(self):
                self.items = []

            def push(self, x):
                self.items.append(x)
        """,
    )
    signatures = infer(tmp_path)
    assert signatures["m.py::Widget.__init__"].is_pure
    assert "mutates-self" in signatures["m.py::Widget.push"].direct


def test_param_mutation_is_mutates_param(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        def fill(sink):
            sink.append(1)
        """,
    )
    signatures = infer(tmp_path)
    assert "mutates-param" in signatures["m.py::fill"].direct


def test_io_calls_are_io(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        def save(path, data):
            with open(path, "w") as handle:
                handle.write(data)
            handle.flush()
        """,
    )
    signatures = infer(tmp_path)
    assert "io" in signatures["m.py::save"].direct


def test_str_replace_is_not_io(tmp_path):
    # regression: Path.replace is IO, str.replace is not; the method table
    # must not flag string munging (sql/ast.py::Literal.__str__ originally
    # false-positived on exactly this).
    write(
        tmp_path,
        "m.py",
        """
        def quote(value):
            return "'" + value.replace("'", "''") + "'"
        """,
    )
    signatures = infer(tmp_path)
    assert signatures["m.py::quote"].is_pure


def test_mutating_locally_created_object_is_pure(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        def build():
            rows = []
            rows.append(1)
            return rows
        """,
    )
    signatures = infer(tmp_path)
    assert signatures["m.py::build"].is_pure


# ---------------------------------------------------------------------------
# propagation
# ---------------------------------------------------------------------------


def test_viral_effects_propagate_to_callers(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        CACHE = {}

        def leaf(key):
            CACHE[key] = 1

        def middle(key):
            return leaf(key)

        def top(key):
            return middle(key)
        """,
    )
    signatures = infer(tmp_path)
    top = signatures["m.py::top"]
    assert "writes-global" in top.transitive
    assert "writes-global" not in top.direct
    # transitive atoms render with the * marker (CACHE[key] = 1 both reads
    # and writes the module global, and both atoms travel together)
    assert top.describe() == "writes-global* reads-global*"


def test_mutates_self_propagates_only_within_the_class(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        class Widget:
            def _bump(self):
                self.count = 1

            def touch(self):
                self._bump()

        def outsider(widget):
            widget.touch()
        """,
    )
    signatures = infer(tmp_path)
    # self.helper() inside the class: the mutation is the caller's too
    assert "mutates-self" in signatures["m.py::Widget.touch"].transitive
    # but a caller outside the class does not mutate *its* self
    assert "mutates-self" not in signatures["m.py::outsider"].transitive


def test_summary_and_impure_query(tmp_path):
    write(
        tmp_path,
        "m.py",
        """
        def pure_one():
            return 1

        def io_one():
            print("hi")
        """,
    )
    signatures = infer(tmp_path)
    summary = effects_summary(signatures)
    assert summary["total"] == 2
    assert summary["pure"] == 1
    assert summary["io"] == 1
    impure = impure_functions(signatures, ["io"])
    assert [s.qualname for s in impure] == ["m.py::io_one"]


# ---------------------------------------------------------------------------
# the real tree: the rules `repro check --effects` enforces
# ---------------------------------------------------------------------------


def test_real_tree_planning_layers_do_no_direct_io():
    graph = ProgramGraph.build(PACKAGE_ROOT)
    signatures = infer_effects(graph)
    offenders = [
        qualname
        for qualname, signature in signatures.items()
        if "io" in signature.direct
        and graph.functions[qualname].module.startswith(
            ("optimizer/", "sql/", "catalog/")
        )
    ]
    assert offenders == []


def test_real_tree_global_writes_confined_to_fault_registry():
    graph = ProgramGraph.build(PACKAGE_ROOT)
    signatures = infer_effects(graph)
    offenders = {
        graph.functions[qualname].module
        for qualname, signature in signatures.items()
        if "writes-global" in signature.direct
    }
    assert offenders <= {"rss/faults.py"}


def test_real_tree_like_regex_writes_nothing():
    # regression for the unguarded-parallel-state fix: like_regex used to
    # memoize into a module-level dict from the compiled closures; it must
    # never touch shared state again (directly effect-free; the transitive
    # set only carries over-approximated .append edges)
    graph = ProgramGraph.build(PACKAGE_ROOT)
    signatures = infer_effects(graph)
    signature = signatures["engine/evaluator.py::like_regex"]
    assert signature.direct == set()
    assert "writes-global" not in signature.transitive


def test_real_tree_cost_model_is_pure():
    # the paper's cost formulas are arithmetic over catalog statistics;
    # the whole module must stay effect-free so the DP search can fan out
    graph = ProgramGraph.build(PACKAGE_ROOT)
    signatures = infer_effects(graph)
    impure = [
        qualname
        for qualname, signature in signatures.items()
        if graph.functions[qualname].module == "optimizer/cost.py"
        and (signature.transitive - {"reads-global", "mutates-self"})
    ]
    assert impure == []
