"""Name resolution and semantic checking (the OPTIMIZER's first phase).

The binder looks FROM-list tables up in the catalog, resolves every column
reference (searching the current block first, then enclosing blocks — an
outer hit makes the reference a correlation), rewrites subqueries into
nested bound blocks, collects aggregates, and type-checks comparisons.
"""

from __future__ import annotations

from ..catalog.catalog import Catalog
from ..datatypes import DataType, TypeKind, INTEGER, FLOAT
from ..errors import SemanticError
from ..sql import ast
from .bound import (
    AggregateRef,
    BlockTable,
    BoundColumn,
    BoundQueryBlock,
    BoundSubquery,
)


class _Scope:
    """One query block's name space during binding."""

    def __init__(self, block_id: int, tables: list[BlockTable]):
        self.block_id = block_id
        self.tables = tables
        self.by_alias = {entry.alias: entry for entry in tables}

    def resolve(self, ref: ast.ColumnRef) -> BoundColumn | None:
        """Resolve a column reference in this scope; None when absent."""
        if ref.qualifier is not None:
            entry = self.by_alias.get(ref.qualifier)
            if entry is None or not entry.table.has_column(ref.name):
                return None
            return self._bind(entry, ref.name)
        matches = [
            entry for entry in self.tables if entry.table.has_column(ref.name)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            raise SemanticError(f"ambiguous column reference {ref.name!r}")
        return self._bind(matches[0], ref.name)

    def _bind(self, entry: BlockTable, column_name: str) -> BoundColumn:
        position = entry.table.column_position(column_name)
        return BoundColumn(
            alias=entry.alias,
            position=position,
            column_name=column_name,
            table_name=entry.table.name,
            datatype=entry.table.columns[position].datatype,
            block_id=self.block_id,
        )


class Binder:  # concurrency: statement-scoped
    """Binds SELECT statements against a catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._next_block_id = 1

    def bind(self, query: ast.SelectQuery) -> BoundQueryBlock:
        """Bind a parsed SELECT into a BoundQueryBlock tree."""
        return self._bind_block(query, outer_scopes=[])

    # -- block binding --------------------------------------------------------

    def _bind_block(
        self, query: ast.SelectQuery, outer_scopes: list[_Scope]
    ) -> BoundQueryBlock:
        block_id = self._next_block_id
        self._next_block_id += 1
        tables: list[BlockTable] = []
        seen_aliases: set[str] = set()
        for ref in query.from_tables:
            if ref.alias in seen_aliases:
                raise SemanticError(f"duplicate alias {ref.alias!r} in FROM list")
            seen_aliases.add(ref.alias)
            tables.append(BlockTable(ref.alias, self._catalog.table(ref.table_name)))
        scope = _Scope(block_id, tables)
        scopes = [scope] + outer_scopes

        state = _BlockState(block_id)

        where = (
            self._bind_expr(query.where, scopes, state, allow_aggregates=False)
            if query.where is not None
            else None
        )
        group_by = [
            self._bind_column(column, scopes, state) for column in query.group_by
        ]

        select_exprs: list[ast.Expr] = []
        output_names: list[str] = []
        if query.is_star:
            for entry in tables:
                for position, column in enumerate(entry.table.columns):
                    select_exprs.append(
                        BoundColumn(
                            alias=entry.alias,
                            position=position,
                            column_name=column.name,
                            table_name=entry.table.name,
                            datatype=column.datatype,
                            block_id=block_id,
                        )
                    )
                    output_names.append(column.name)
        else:
            for item in query.select_items:
                bound = self._bind_expr(
                    item.expr, scopes, state, allow_aggregates=True
                )
                select_exprs.append(bound)
                output_names.append(item.alias or _default_name(item.expr))

        having = (
            self._bind_expr(query.having, scopes, state, allow_aggregates=True)
            if query.having is not None
            else None
        )
        order_by = [
            (self._bind_column(item.column, scopes, state), item.descending)
            for item in query.order_by
        ]

        block = BoundQueryBlock(
            block_id=block_id,
            tables=tables,
            select_exprs=select_exprs,
            output_names=output_names,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            distinct=query.distinct,
            aggregates=state.aggregates,
            correlated_columns=state.correlated_columns,
            subqueries=state.subqueries,
        )
        self._check_aggregation_rules(block)
        return block

    # -- expression binding --------------------------------------------------------

    def _bind_expr(
        self,
        expr: ast.Expr,
        scopes: list[_Scope],
        state: "_BlockState",
        allow_aggregates: bool,
    ) -> ast.Expr:
        if isinstance(expr, ast.Literal):
            return expr
        if isinstance(expr, ast.ColumnRef):
            return self._resolve(expr, scopes, state)
        if isinstance(expr, ast.BinaryOp):
            left = self._bind_expr(expr.left, scopes, state, allow_aggregates)
            right = self._bind_expr(expr.right, scopes, state, allow_aggregates)
            for side in (left, right):
                kind = _expr_type(side)
                if kind is not None and not kind.is_arithmetic:
                    raise SemanticError(
                        f"arithmetic on non-arithmetic operand {side}"
                    )
            return ast.BinaryOp(expr.op, left, right)
        if isinstance(expr, ast.Negate):
            operand = self._bind_expr(expr.operand, scopes, state, allow_aggregates)
            return ast.Negate(operand)
        if isinstance(expr, ast.FuncCall):
            if not allow_aggregates:
                raise SemanticError(
                    f"aggregate {expr.name} not allowed in this clause"
                )
            return self._bind_aggregate(expr, scopes, state)
        if isinstance(expr, ast.Comparison):
            left = self._bind_expr(expr.left, scopes, state, allow_aggregates)
            right = self._bind_expr(expr.right, scopes, state, allow_aggregates)
            _check_comparable(left, right)
            return ast.Comparison(expr.op, left, right)
        if isinstance(expr, ast.Between):
            operand = self._bind_expr(expr.operand, scopes, state, allow_aggregates)
            low = self._bind_expr(expr.low, scopes, state, allow_aggregates)
            high = self._bind_expr(expr.high, scopes, state, allow_aggregates)
            _check_comparable(operand, low)
            _check_comparable(operand, high)
            return ast.Between(operand, low, high)
        if isinstance(expr, ast.InList):
            operand = self._bind_expr(expr.operand, scopes, state, allow_aggregates)
            for literal in expr.values:
                _check_comparable(operand, literal)
            return ast.InList(operand, expr.values)
        if isinstance(expr, ast.InSubquery):
            operand = self._bind_expr(expr.operand, scopes, state, allow_aggregates)
            subquery = self._bind_subquery(expr.subquery, scopes, state, scalar=False)
            return ast.InSubquery(operand, subquery)  # type: ignore[arg-type]
        if isinstance(expr, ast.ScalarSubquery):
            return self._bind_subquery(expr.subquery, scopes, state, scalar=True)
        if isinstance(expr, ast.IsNull):
            operand = self._bind_expr(expr.operand, scopes, state, allow_aggregates)
            return ast.IsNull(operand, expr.negated)
        if isinstance(expr, ast.Like):
            operand = self._bind_expr(expr.operand, scopes, state, allow_aggregates)
            kind = _expr_type(operand)
            if kind is not None and kind.kind is not TypeKind.VARCHAR:
                raise SemanticError("LIKE requires a string operand")
            return ast.Like(operand, expr.pattern, expr.negated)
        if isinstance(expr, ast.And):
            return ast.And(
                tuple(
                    self._bind_expr(op, scopes, state, allow_aggregates)
                    for op in expr.operands
                )
            )
        if isinstance(expr, ast.Or):
            return ast.Or(
                tuple(
                    self._bind_expr(op, scopes, state, allow_aggregates)
                    for op in expr.operands
                )
            )
        if isinstance(expr, ast.Not):
            return ast.Not(self._bind_expr(expr.operand, scopes, state, allow_aggregates))
        raise SemanticError(f"cannot bind expression {expr!r}")

    def _bind_aggregate(
        self, call: ast.FuncCall, scopes: list[_Scope], state: "_BlockState"
    ) -> AggregateRef:
        argument = None
        if call.argument is not None:
            argument = self._bind_expr(
                call.argument, scopes, state, allow_aggregates=False
            )
            kind = _expr_type(argument)
            if call.name in ("AVG", "SUM") and kind is not None and not kind.is_arithmetic:
                raise SemanticError(f"{call.name} requires an arithmetic argument")
        bound_call = ast.FuncCall(call.name, argument, call.distinct)
        for index, existing in enumerate(state.aggregates):
            if existing == bound_call:
                return AggregateRef(index)
        state.aggregates.append(bound_call)
        return AggregateRef(len(state.aggregates) - 1)

    def _bind_subquery(
        self,
        query: ast.SelectQuery,
        scopes: list[_Scope],
        state: "_BlockState",
        scalar: bool,
    ) -> BoundSubquery:
        block = self._bind_block(query, outer_scopes=scopes)
        if len(block.select_exprs) != 1:
            raise SemanticError("subquery must select exactly one expression")
        subquery = BoundSubquery(block, scalar)
        state.subqueries.append(subquery)
        # Correlation to a block at or above the current one propagates: the
        # current block must be re-evaluated when those outer values change.
        for column in block.correlated_columns:
            if column.block_id != state.block_id:
                state.add_correlated(column)
        return subquery

    def _resolve(
        self, ref: ast.ColumnRef, scopes: list[_Scope], state: "_BlockState"
    ) -> BoundColumn:
        for scope in scopes:
            bound = scope.resolve(ref)
            if bound is not None:
                if bound.block_id != state.block_id:
                    state.add_correlated(bound)
                return bound
        raise SemanticError(f"unknown column {ref}")

    def _bind_column(
        self, ref: ast.ColumnRef, scopes: list[_Scope], state: "_BlockState"
    ) -> BoundColumn:
        bound = self._resolve(ref, scopes, state)
        if bound.block_id != state.block_id:
            raise SemanticError(
                f"GROUP BY / ORDER BY column {ref} must belong to this query block"
            )
        return bound

    # -- validation ---------------------------------------------------------------

    def _check_aggregation_rules(self, block: BoundQueryBlock) -> None:
        if not block.is_aggregate:
            if block.having is not None:
                raise SemanticError("HAVING requires GROUP BY or aggregates")
            return
        group_keys = {
            (column.alias, column.position) for column in block.group_by
        }
        for expr in list(block.select_exprs) + (
            [block.having] if block.having is not None else []
        ):
            for column in _plain_columns(expr, block.block_id):
                if (column.alias, column.position) not in group_keys:
                    raise SemanticError(
                        f"column {column} must appear in GROUP BY or inside "
                        "an aggregate"
                    )
        for column, __ in block.order_by:
            if (column.alias, column.position) not in group_keys:
                raise SemanticError(
                    f"ORDER BY column {column} must be a grouping column"
                )


class _BlockState:  # concurrency: statement-scoped
    """Mutable accumulation while binding one block."""

    def __init__(self, block_id: int):
        self.block_id = block_id
        self.aggregates: list[ast.FuncCall] = []
        self.correlated_columns: list[BoundColumn] = []
        self.subqueries: list[BoundSubquery] = []

    def add_correlated(self, column: BoundColumn) -> None:
        """Record an outer-block column this block depends on."""
        if column not in self.correlated_columns:
            self.correlated_columns.append(column)


# -- helpers -----------------------------------------------------------------


def _default_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    return str(expr)


def _expr_type(expr: ast.Expr) -> DataType | None:
    """Static type of a bound expression; None when undeterminable."""
    if isinstance(expr, BoundColumn):
        return expr.datatype
    if isinstance(expr, ast.Literal):
        if isinstance(expr.value, bool) or expr.value is None:
            return None
        if isinstance(expr.value, int):
            return INTEGER
        if isinstance(expr.value, float):
            return FLOAT
        return DataType(TypeKind.VARCHAR, max(1, len(str(expr.value))))
    if isinstance(expr, (ast.BinaryOp, ast.Negate)):
        return FLOAT
    if isinstance(expr, AggregateRef):
        return None
    if isinstance(expr, BoundSubquery):
        return _expr_type(expr.block.select_exprs[0])
    return None


def _check_comparable(left: ast.Expr, right: ast.Expr) -> None:
    left_type = _expr_type(left)
    right_type = _expr_type(right)
    if left_type is None or right_type is None:
        return
    if left_type.is_arithmetic != right_type.is_arithmetic:
        raise SemanticError(
            f"type mismatch: cannot compare {left} ({left_type}) "
            f"with {right} ({right_type})"
        )


def _plain_columns(expr: ast.Expr, block_id: int):
    """Yield this block's BoundColumns that are outside aggregate calls."""
    for node in ast.walk_expr(expr):
        if isinstance(node, BoundColumn) and node.block_id == block_id:
            yield node

