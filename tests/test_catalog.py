"""Unit tests for the catalog and statistics collection."""

import pytest

from repro.catalog import Catalog, RelationStats, collect_statistics
from repro.datatypes import INTEGER, varchar
from repro.errors import CatalogError, SemanticError
from repro.rss import StorageEngine


def make_catalog():
    catalog = Catalog()
    catalog.create_table(
        "EMP", [("ENO", INTEGER), ("NAME", varchar(20)), ("DNO", INTEGER)]
    )
    return catalog


class TestTables:
    def test_create_and_lookup(self):
        catalog = make_catalog()
        table = catalog.table("emp")  # case-insensitive
        assert table.name == "EMP"
        assert table.column_names == ["ENO", "NAME", "DNO"]

    def test_relation_ids_distinct(self):
        catalog = make_catalog()
        dept = catalog.create_table("DEPT", [("DNO", INTEGER)])
        assert dept.relation_id != catalog.table("EMP").relation_id

    def test_duplicate_table_rejected(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError):
            catalog.create_table("EMP", [("X", INTEGER)])

    def test_unknown_table(self):
        with pytest.raises(SemanticError):
            make_catalog().table("NOPE")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            Catalog().create_table("T", [("A", INTEGER), ("A", INTEGER)])

    def test_drop_table_removes_indexes(self):
        catalog = make_catalog()
        catalog.create_index("I", "EMP", ["DNO"])
        catalog.drop_table("EMP")
        assert not catalog.has_table("EMP")
        with pytest.raises(CatalogError):
            catalog.index("I")

    def test_column_position(self):
        table = make_catalog().table("EMP")
        assert table.column_position("DNO") == 2
        with pytest.raises(SemanticError):
            table.column_position("NOPE")


class TestIndexes:
    def test_create_index(self):
        catalog = make_catalog()
        index = catalog.create_index("EMP_DNO", "EMP", ["DNO"])
        assert index.key_positions == [2]
        assert catalog.indexes_on("EMP") == [index]

    def test_duplicate_index_rejected(self):
        catalog = make_catalog()
        catalog.create_index("I", "EMP", ["DNO"])
        with pytest.raises(CatalogError):
            catalog.create_index("I", "EMP", ["ENO"])

    def test_second_clustered_index_rejected(self):
        catalog = make_catalog()
        catalog.create_index("I1", "EMP", ["DNO"], clustered=True)
        with pytest.raises(CatalogError):
            catalog.create_index("I2", "EMP", ["ENO"], clustered=True)

    def test_index_on_column_uses_first_key_column(self):
        catalog = make_catalog()
        composite = catalog.create_index("I", "EMP", ["DNO", "ENO"])
        assert catalog.index_on_column("EMP", "DNO") is composite
        assert catalog.index_on_column("EMP", "ENO") is None

    def test_index_key_extraction(self):
        catalog = make_catalog()
        index = catalog.create_index("I", "EMP", ["DNO", "ENO"])
        assert index.key_of((7, "x", 42)) == (42, 7)

    def test_drop_index(self):
        catalog = make_catalog()
        catalog.create_index("I", "EMP", ["DNO"])
        catalog.drop_index("I")
        assert catalog.indexes_on("EMP") == []


class TestStatistics:
    def make_loaded(self, rows=300, groups=30):
        catalog = make_catalog()
        engine = StorageEngine()
        table = catalog.table("EMP")
        engine.ensure_segment(table.segment_name)
        index = catalog.create_index("EMP_DNO", "EMP", ["DNO"])
        engine.create_index(index, table)
        for i in range(rows):
            engine.insert(table, [index], (i, f"name{i}", i % groups))
        return catalog, engine, table

    def test_relation_stats(self):
        catalog, engine, table = self.make_loaded()
        collect_statistics(catalog, engine)
        stats = catalog.relation_stats("EMP")
        assert stats.ncard == 300
        assert stats.tcard >= 1
        assert stats.fraction == pytest.approx(1.0)

    def test_index_stats(self):
        catalog, engine, __ = self.make_loaded()
        collect_statistics(catalog, engine)
        stats = catalog.index_stats("EMP_DNO")
        assert stats.icard == 30
        assert stats.nindx >= 1
        assert stats.low_key == 0
        assert stats.high_key == 29

    def test_missing_stats_is_none(self):
        catalog = make_catalog()
        assert catalog.relation_stats("EMP") is None

    def test_stats_refresh_after_dml(self):
        catalog, engine, table = self.make_loaded()
        collect_statistics(catalog, engine)
        tid = engine.insert(table, catalog.indexes_on("EMP"), (999, "new", 5))
        # Stats are NOT auto-updated (the paper's explicit design choice).
        assert catalog.relation_stats("EMP").ncard == 300
        collect_statistics(catalog, engine, "EMP")
        assert catalog.relation_stats("EMP").ncard == 301

    def test_collection_does_not_perturb_counters(self):
        catalog, engine, __ = self.make_loaded()
        engine.counters.reset()
        collect_statistics(catalog, engine)
        assert engine.counters.page_fetches == 0
        assert engine.counters.rsi_calls == 0

    def test_clear_statistics(self):
        catalog, engine, __ = self.make_loaded()
        collect_statistics(catalog, engine)
        catalog.clear_statistics()
        assert catalog.relation_stats("EMP") is None
        assert catalog.index_stats("EMP_DNO") is None
