"""UPDATE / DELETE go through the same access path selection as queries."""

import pytest

from repro import Database
from repro.workloads import load_rows


@pytest.fixture
def inventory(db):
    db.execute(
        "CREATE TABLE INV (SKU INTEGER, QTY INTEGER, BIN INTEGER, PAD VARCHAR(40))"
    )
    load_rows(
        db,
        "INV",
        [(i, (i * 3) % 50, i % 20, "x" * 30) for i in range(2000)],
    )
    db.execute("CREATE UNIQUE INDEX INV_SKU ON INV (SKU)")
    db.execute("CREATE INDEX INV_BIN ON INV (BIN)")
    db.execute("UPDATE STATISTICS")
    return db


class TestDmlUsesIndexes:
    def test_update_by_key_touches_few_pages(self, inventory):
        inventory.cold_cache()
        inventory.execute("UPDATE INV SET QTY = 0 WHERE SKU = 1234")
        # Unique-index access: index descent + one data page (+ index
        # maintenance); nothing like a full scan.
        assert inventory.counters.page_fetches < 10

    def test_full_scan_update_touches_all_pages(self, inventory):
        stats = inventory.catalog.relation_stats("INV")
        inventory.cold_cache()
        inventory.execute("UPDATE INV SET QTY = QTY + 1 WHERE QTY >= 0")
        assert inventory.counters.page_fetches >= stats.tcard

    def test_delete_by_indexed_column(self, inventory):
        before = inventory.execute("SELECT COUNT(*) FROM INV").scalar()
        result = inventory.execute("DELETE FROM INV WHERE BIN = 7")
        assert result.affected_rows == 100
        after = inventory.execute("SELECT COUNT(*) FROM INV").scalar()
        assert after == before - 100
        assert inventory.execute(
            "SELECT COUNT(*) FROM INV WHERE BIN = 7"
        ).scalar() == 0

    def test_update_key_column_rebalances_index(self, inventory):
        inventory.execute("UPDATE INV SET BIN = 99 WHERE BIN = 3")
        assert inventory.execute(
            "SELECT COUNT(*) FROM INV WHERE BIN = 3"
        ).scalar() == 0
        assert inventory.execute(
            "SELECT COUNT(*) FROM INV WHERE BIN = 99"
        ).scalar() == 100

    def test_update_unique_key_conflict_detected(self, inventory):
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            inventory.execute("UPDATE INV SET SKU = 1 WHERE SKU = 2")

    def test_update_to_same_key_allowed(self, inventory):
        result = inventory.execute("UPDATE INV SET SKU = 2 WHERE SKU = 2")
        assert result.affected_rows == 1

    def test_delete_everything_then_reload(self, inventory):
        inventory.execute("DELETE FROM INV")
        assert inventory.execute("SELECT COUNT(*) FROM INV").scalar() == 0
        inventory.execute("INSERT INTO INV VALUES (1, 1, 1, 'fresh')")
        assert inventory.execute(
            "SELECT PAD FROM INV WHERE SKU = 1"
        ).rows == [("fresh",)]

    def test_update_statistics_reflects_dml(self, inventory):
        inventory.execute("DELETE FROM INV WHERE BIN < 10")
        inventory.execute("UPDATE STATISTICS INV")
        stats = inventory.catalog.relation_stats("INV")
        assert stats.ncard == 1000
        index_stats = inventory.catalog.index_stats("INV_BIN")
        assert index_stats.icard == 10
        assert index_stats.low_key == 10
