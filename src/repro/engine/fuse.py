"""Pipeline fusion: one compiled per-batch driver per fusible chain.

The generator-per-operator engine in :mod:`repro.engine.operators` pays a
Python frame hand-off for every tuple crossing every operator — the exact
tuple-at-a-time tax the paper's W·RSICARD term models.  This module walks
a physical plan once, identifies maximal fusible chains
(``Scan→Filter*→Project``), and compiles each into a **single driver
closure** that rides the page-aligned ``batches()`` interface of
:mod:`repro.rss.scan`: one loop consumes a whole batch, evaluating the
residual, filter, and projection closures inline with zero intermediate
generators.

Pipeline breakers terminate chains and couple them batch-at-a-time:

- **Sort** materializes its input (the fused chain below is consumed
  whole) and re-emits the ordered output in batches.
- **Aggregate** folds a group-ordered batch stream through the shared
  streaming-aggregation core.
- **Merge join** consumes its outer side as fused batches but pulls its
  inner side tuple-at-a-time: the inner may be abandoned early, and
  batch-granular RSI accounting would charge tuples the reference engine
  never pulled (see :func:`_lazy_rows`).
- **Nested-loop join** re-opens its inner scan per outer row, with the
  inner's batch loop inlined into the driver.
- **Subquery-effect barriers** need no special casing: subquery-bearing
  factors are never reordered by :mod:`repro.engine.compile`, and fused
  drivers reuse the *same* compiled conjunction closures as the reference
  operators, so the per-row evaluation cadence (3VL short-circuiting,
  subquery cache hits, cost-counter footprint) is identical by
  construction.

Counter fidelity: ``batches()`` does no RSI accounting; drivers charge
``CostCounters.count_rsi_call(len(batch))`` before a batch is processed.
Totals match the tuple-at-a-time path exactly because every batched
stream here is fully consumed — the only partial consumer in the engine
(the merge-join inner) stays on the per-tuple path.

Drivers are compiled once per plan node and cached on
``PlanNode.compiled`` (keys ``"fused"`` and ``"fused_out"``); they
capture only compiled programs and plan constants, never an execution
context, so a cached plan re-executes with fresh runtimes.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import chain, islice
from operator import itemgetter
from typing import Callable, Iterator

from ..errors import ExecutionError
from ..optimizer.bound import BoundColumn
from ..optimizer.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from .evaluator import EvalEnv
from .operators import (
    ExecContext,
    _AggState,
    _build_aggregate,
    _build_filter,
    _build_hash_join,
    _build_merge,
    _build_nested_loop,
    _build_project,
    _build_scan,
    _program,
    aggregate_rows,
    build_hash_table,
    iterate,
    merge_join_rows,
    open_scan,
    sort_rows,
)
from .rows import AGGREGATE_ALIAS, OUTPUT_ALIAS, Row

#: Rows per re-emitted batch downstream of a pipeline breaker.
BREAKER_BATCH_SIZE = 1024

#: A compiled batch driver: executes one plan subtree against a context,
#: yielding lists of composite rows.
BatchDriver = Callable[[ExecContext, "EvalEnv | None"], Iterator[list[Row]]]


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def fused_batches(
    node: PlanNode, ctx: ExecContext, outer: EvalEnv | None = None
) -> Iterator[list[Row]]:
    """Execute a plan subtree through its fused per-batch drivers."""
    return _fused_program(node, ctx)(ctx, outer)


def fused_rows(
    node: PlanNode, ctx: ExecContext, outer: EvalEnv | None = None
) -> Iterator[Row]:
    """Row stream over :func:`fused_batches`.

    Laziness is batch-granular: pulling one row surfaces (and charges RSI
    for) the whole batch it arrived in.  Every consumer reached through
    :func:`repro.engine.operators.iterate` — statement execution, DML row
    collection, subquery materialization — consumes its stream fully, so
    the totals are identical to tuple-at-a-time iteration.  Partial
    consumers needing an exact per-tuple trace (the merge-join inner) use
    :func:`_lazy_rows` instead.
    """
    return chain.from_iterable(fused_batches(node, ctx, outer))


def output_tuples(
    node: PlanNode, ctx: ExecContext, outer: EvalEnv | None = None
) -> Iterator[tuple]:
    """Bare ``__out__`` tuples of a plan whose consumer reads only them.

    The top-level executor and subquery materialization never look at a
    projected row's alias tuples or TIDs, so their chains skip composite
    ``Row`` construction entirely and emit output tuples straight from
    decoded storage tuples.
    """
    return chain.from_iterable(_output_program(node, ctx)(ctx, outer))


def describe_chains(node: PlanNode) -> list[str]:
    """One line per fused pipeline stage of a plan (for ``repro check``)."""
    chains: list[str] = []
    _collect_chains(node, chains)
    return chains


# ---------------------------------------------------------------------------
# driver compilation
# ---------------------------------------------------------------------------


def _fused_program(node: PlanNode, ctx: ExecContext) -> BatchDriver:
    # Parallel mode compiles its own driver tree: eligible chains get
    # worker-pool drivers, the rest reuse the serial builders below, and
    # the distinct cache key keeps the two engines from mixing.  Drivers
    # read ``ctx.workers`` at call time, so one cached parallel driver
    # serves any worker count.
    cache = node.compiled
    key = "parallel" if ctx.parallel else "fused"
    if key not in cache:
        cache[key] = _build_fused(node, ctx)
    return cache[key]


def _build_fused(node: PlanNode, ctx: ExecContext) -> BatchDriver:
    """Compile one plan subtree into its batch driver.

    Dispatches on every plan node type (enforced by the
    ``walker-not-exhaustive`` lint rule): chain heads collapse through
    :func:`_collapse`, breakers get coupling drivers.
    """
    if isinstance(node, (ProjectNode, FilterNode, ScanNode)):
        project, filters, bottom = _collapse(node)
        if isinstance(bottom, ScanNode):
            if ctx.parallel:
                from .parallel import parallel_chain_driver

                driver = parallel_chain_driver(bottom, filters, project, ctx)
                if driver is not None:
                    return driver
            return _scan_chain_driver(bottom, filters, project, ctx)
        preds = [_program(f, ctx, _build_filter) for f in filters]
        fns = None if project is None else _program(project, ctx, _build_project)
        source = _fused_program(bottom, ctx)
        return _row_chain_driver(source, preds, fns)
    if isinstance(node, NestedLoopJoinNode):
        if ctx.parallel:
            from .parallel import parallel_nested_loop_driver

            driver = parallel_nested_loop_driver(node, ctx)
            if driver is not None:
                return driver
        return _nested_loop_driver(node, ctx)
    if isinstance(node, MergeJoinNode):
        return _merge_join_driver(node, ctx)
    if isinstance(node, HashJoinNode):
        if ctx.parallel and node.partitions == 1:
            from .parallel import parallel_hash_join_driver

            driver = parallel_hash_join_driver(node, ctx)
            if driver is not None:
                return driver
        return _hash_join_driver(node, ctx)
    if isinstance(node, SortNode):
        return _sort_driver(node, ctx)
    if isinstance(node, AggregateNode):
        return _aggregate_driver(node, ctx)
    if isinstance(node, DistinctNode):
        return _distinct_driver(node, ctx)
    raise ExecutionError(f"no fused driver for plan node {type(node).__name__}")


def _collapse(
    node: PlanNode,
) -> tuple[ProjectNode | None, list[FilterNode], PlanNode]:
    """Split ``Project?→Filter*→X`` into its fusible stages.

    Filters are returned bottom-up — the order the reference operators
    evaluate them in, which subquery-bearing factors must keep.
    """
    project: ProjectNode | None = None
    if isinstance(node, ProjectNode):
        project = node
        node = node.child
    filters: list[FilterNode] = []
    while isinstance(node, FilterNode):
        filters.append(node)
        node = node.child
    filters.reverse()
    return project, filters, node


def _combine(preds) -> Callable[[EvalEnv], bool] | None:
    """One short-circuiting closure over a cascade of conjunction programs."""
    fns = tuple(fn for fn in preds if fn is not None)
    if not fns:
        return None
    if len(fns) == 1:
        return fns[0]

    def conj(env: EvalEnv, _fns=fns) -> bool:
        for fn in _fns:
            if not fn(env):
                return False
        return True

    return conj


def _columns_getter(exprs, alias: str) -> Callable[[tuple], tuple] | None:
    """An ``itemgetter`` building the output tuple straight from one scan's
    decoded values — only when every projected expression is a plain column
    of that scan, so no compiled closure could observe a difference."""
    positions = []
    for expr in exprs:
        if type(expr) is not BoundColumn or expr.alias != alias:
            return None
        positions.append(expr.position)
    if not positions:
        return None
    if len(positions) == 1:
        get = itemgetter(positions[0])

        def single(values: tuple, _get=get) -> tuple:
            return (_get(values),)

        return single
    return itemgetter(*positions)


def _rebatch(rows: Iterator[Row], size: int = BREAKER_BATCH_SIZE):
    """Chunk a row stream back into batches downstream of a breaker."""
    rows = iter(rows)
    while True:
        batch = list(islice(rows, size))
        if not batch:
            return
        yield batch


# ---------------------------------------------------------------------------
# fused chains over a scan
# ---------------------------------------------------------------------------


def _scan_chain_driver(
    scan_node: ScanNode,
    filters: list[FilterNode],
    project: ProjectNode | None,
    ctx: ExecContext,
) -> BatchDriver:
    """The core fusion: ``Scan→Filter*→Project?`` as one per-batch loop.

    RSI is charged batch-at-a-time *before* residual evaluation — the same
    point in the stream the per-tuple path charges each tuple, so fully
    consumed chains land on identical totals.
    """
    program = _program(scan_node, ctx, _build_scan)
    alias = scan_node.alias
    preds = [program.residual]
    preds.extend(_program(f, ctx, _build_filter) for f in filters)
    test = _combine(preds)
    fns = None if project is None else _program(project, ctx, _build_project)

    if test is None and fns is None:

        def rows_driver(ctx: ExecContext, outer: EvalEnv | None):
            scan = open_scan(scan_node, program, ctx, outer)
            if scan is None:
                return
            count_rsi = ctx.storage.counters.count_rsi_call
            for batch in scan.batches():
                count_rsi(len(batch))
                yield [
                    Row(values={alias: values}, tids={alias: tid})
                    for tid, values in batch
                ]

        return rows_driver

    if fns is None:

        def filter_driver(ctx: ExecContext, outer: EvalEnv | None):
            scan = open_scan(scan_node, program, ctx, outer)
            if scan is None:
                return
            count_rsi = ctx.storage.counters.count_rsi_call
            env = ctx.env(Row(), outer)
            for batch in scan.batches():
                count_rsi(len(batch))
                out = []
                append = out.append
                for tid, values in batch:
                    row = Row(values={alias: values}, tids={alias: tid})
                    env.row = row
                    if test(env):
                        append(row)
                if out:
                    yield out

        return filter_driver

    if test is None:

        def project_driver(ctx: ExecContext, outer: EvalEnv | None):
            scan = open_scan(scan_node, program, ctx, outer)
            if scan is None:
                return
            count_rsi = ctx.storage.counters.count_rsi_call
            env = ctx.env(Row(), outer)
            for batch in scan.batches():
                count_rsi(len(batch))
                out = []
                append = out.append
                for tid, values in batch:
                    tids = {alias: tid}
                    env.row = Row(values={alias: values}, tids=tids)
                    append(
                        Row(
                            values={
                                alias: values,
                                OUTPUT_ALIAS: tuple([fn(env) for fn in fns]),
                            },
                            tids=tids,
                        )
                    )
                yield out

        return project_driver

    def chain_driver(ctx: ExecContext, outer: EvalEnv | None):
        scan = open_scan(scan_node, program, ctx, outer)
        if scan is None:
            return
        count_rsi = ctx.storage.counters.count_rsi_call
        env = ctx.env(Row(), outer)
        for batch in scan.batches():
            count_rsi(len(batch))
            out = []
            append = out.append
            for tid, values in batch:
                tids = {alias: tid}
                env.row = Row(values={alias: values}, tids=tids)
                if test(env):
                    append(
                        Row(
                            values={
                                alias: values,
                                OUTPUT_ALIAS: tuple([fn(env) for fn in fns]),
                            },
                            tids=tids,
                        )
                    )
            if out:
                yield out

    return chain_driver


def _row_chain_driver(
    source: BatchDriver, preds, fns
) -> BatchDriver:
    """``Filter*→Project?`` applied over a breaker's batch stream in one
    loop per batch (no per-operator generators)."""
    test = _combine(preds)
    if test is None and fns is None:
        return source

    if fns is None:

        def filter_driver(ctx: ExecContext, outer: EvalEnv | None):
            env = ctx.env(Row(), outer)
            for batch in source(ctx, outer):
                out = []
                append = out.append
                for row in batch:
                    env.row = row
                    if test(env):
                        append(row)
                if out:
                    yield out

        return filter_driver

    if test is None:

        def project_driver(ctx: ExecContext, outer: EvalEnv | None):
            env = ctx.env(Row(), outer)
            for batch in source(ctx, outer):
                out = []
                append = out.append
                for row in batch:
                    env.row = row
                    output = tuple([fn(env) for fn in fns])
                    append(
                        Row(
                            values={**row.values, OUTPUT_ALIAS: output},
                            tids=row.tids,
                        )
                    )
                yield out

        return project_driver

    def chain_driver(ctx: ExecContext, outer: EvalEnv | None):
        env = ctx.env(Row(), outer)
        for batch in source(ctx, outer):
            out = []
            append = out.append
            for row in batch:
                env.row = row
                if test(env):
                    output = tuple([fn(env) for fn in fns])
                    append(
                        Row(
                            values={**row.values, OUTPUT_ALIAS: output},
                            tids=row.tids,
                        )
                    )
            if out:
                yield out

    return chain_driver


# ---------------------------------------------------------------------------
# breakers
# ---------------------------------------------------------------------------


def _nested_loop_driver(node: NestedLoopJoinNode, ctx: ExecContext) -> BatchDriver:
    """Nested loops with the inner scan's batch loop inlined.

    Per outer row the inner access re-opens (probe SARGs and index bounds
    re-evaluate against the outer row) and is always fully consumed, so
    batch-at-a-time RSI charging is exact.
    """
    residual = _program(node, ctx, _build_nested_loop)
    inner = node.inner
    inner_program = _program(inner, ctx, _build_scan)
    inner_alias = inner.alias
    inner_test = inner_program.residual
    outer_source = _fused_program(node.outer, ctx)

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        count_rsi = ctx.storage.counters.count_rsi_call
        # One probe environment re-points at each outer row in turn; the
        # inner residual environment chains through it for correlation.
        probe_env = ctx.env(Row(), outer)
        inner_env = ctx.env(Row(), probe_env)
        join_env = ctx.env(Row(), outer)
        # Pages of the inner relation decode once across all probes of
        # this statement; fetches and counters are probe-exact (the cache
        # dies with the driver call, before any tuple can change).
        decode_cache: dict = {}
        for outer_batch in outer_source(ctx, outer):
            out = []
            append = out.append
            for outer_row in outer_batch:
                probe_env.row = outer_row
                scan = open_scan(
                    inner, inner_program, ctx, probe_env, decode_cache
                )
                if scan is None:
                    continue
                outer_values = outer_row.values
                outer_tids = outer_row.tids
                for batch in scan.batches():
                    count_rsi(len(batch))
                    for tid, values in batch:
                        if inner_test is not None:
                            inner_env.row = Row(
                                values={inner_alias: values},
                                tids={inner_alias: tid},
                            )
                            if not inner_test(inner_env):
                                continue
                        merged = Row(
                            values={**outer_values, inner_alias: values},
                            tids={**outer_tids, inner_alias: tid},
                        )
                        if residual is not None:
                            join_env.row = merged
                            if not residual(join_env):
                                continue
                        append(merged)
            if out:
                yield out

    return driver


def _hash_join_driver(node: HashJoinNode, ctx: ExecContext) -> BatchDriver:
    """Hash join with the probe loop inlined over fused outer batches.

    The build side is bucketed once per driver call (once per statement)
    through the same counted scan consumption as the reference operator,
    so the fetch trace and RSI totals are identical; each probed bucket
    charges one RSI call per delivered tuple, exactly like the per-tuple
    path.  Grace-partitioned plans run the serial partitioned code in
    every mode and only re-batch its output here.
    """
    if node.partitions > 1:

        def grace_driver(ctx: ExecContext, outer: EvalEnv | None):
            serial = replace(ctx, fused=False, parallel=False)
            yield from _rebatch(iterate(node, serial, outer))

        return grace_driver

    program = _program(node, ctx, _build_hash_join)
    outer_source = _fused_program(node.outer, ctx)
    outer_getters = program.outer_getters
    residual = program.residual

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        count_rsi = ctx.storage.counters.count_rsi_call
        table = build_hash_table(node, program, ctx, outer)
        env = ctx.env(Row(), outer)
        for outer_batch in outer_source(ctx, outer):
            out = []
            append = out.append
            for outer_row in outer_batch:
                key = tuple([getter(outer_row) for getter in outer_getters])
                bucket = table.get(key)
                if bucket is None:
                    continue
                count_rsi(len(bucket))
                if residual is None:
                    for inner_row in bucket:
                        append(outer_row.merged(inner_row))
                else:
                    for inner_row in bucket:
                        merged = outer_row.merged(inner_row)
                        env.row = merged
                        if residual(env):
                            append(merged)
            if out:
                yield out

    return driver


def _merge_join_driver(node: MergeJoinNode, ctx: ExecContext) -> BatchDriver:
    """Merge join over a fused outer and a tuple-at-a-time inner.

    The outer side is always exhausted, so it fuses; the inner may be
    abandoned mid-stream, so it must stay on the exact per-tuple path
    (:func:`_lazy_rows`) to keep RSI and page-fetch traces identical.
    """
    program = _program(node, ctx, _build_merge)
    outer_source = _fused_program(node.outer, ctx)

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        joined = merge_join_rows(
            program,
            ctx.storage.counters.count_rsi_call,
            ctx.env(Row(), outer),
            chain.from_iterable(outer_source(ctx, outer)),
            _lazy_rows(node.inner, ctx, outer),
        )
        yield from _rebatch(joined)

    return driver


def _lazy_rows(
    node: PlanNode, ctx: ExecContext, outer: EvalEnv | None
) -> Iterator[Row]:
    """A genuinely tuple-at-a-time stream for partially-consumed inputs.

    A sort's *input* is fully consumed by the sorter even when the sorted
    output is abandoned, so sorts fuse their input and stay lazy on
    output (run pages are read back only as rows are pulled).  Everything
    else rides the per-tuple reference operators — for a bare scan that
    is already a single compiled loop, so nothing is lost.
    """
    if isinstance(node, SortNode):
        return sort_rows(
            node, ctx, chain.from_iterable(fused_batches(node.child, ctx, outer))
        )
    return iterate(node, replace(ctx, fused=False, parallel=False), outer)


def _sort_driver(node: SortNode, ctx: ExecContext) -> BatchDriver:
    source = _fused_program(node.child, ctx)

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        ordered = sort_rows(
            node, ctx, chain.from_iterable(source(ctx, outer))
        )
        yield from _rebatch(ordered)

    return driver


def _aggregate_driver(node: AggregateNode, ctx: ExecContext) -> BatchDriver:
    program = _program(node, ctx, _build_aggregate)
    if ctx.parallel:
        from .parallel import parallel_aggregate_driver

        par = parallel_aggregate_driver(node, ctx)
        if par is not None:
            return par
    fast = _scan_aggregate_driver(node, ctx)
    if fast is not None:
        return fast
    source = _fused_program(node.child, ctx)

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        grouped = aggregate_rows(
            node, program, ctx, outer, chain.from_iterable(source(ctx, outer))
        )
        yield from _rebatch(grouped)

    return driver


def _scan_aggregate_driver(
    node: AggregateNode, ctx: ExecContext
) -> BatchDriver | None:
    """``Scan→Aggregate`` folded in one loop over decoded storage tuples.

    When the input is a bare scan (group order from an index) and every
    grouping key and aggregate argument is a plain column of that scan,
    the per-tuple fold indexes the decoded values tuple directly — no
    composite ``Row``, no environment, no compiled-closure calls below
    the group boundary.  One representative ``Row`` per *group* survives
    for HAVING and downstream projection, exactly as the reference
    streaming aggregation builds it.
    """
    project, filters, bottom = _collapse(node.child)
    if project is not None or filters or not isinstance(bottom, ScanNode):
        return None
    scan_node = bottom
    scan_program = _program(scan_node, ctx, _build_scan)
    if scan_program.residual is not None:
        return None
    alias = scan_node.alias
    for column in node.group_by:
        if column.alias != alias:
            return None
    arg_positions: list[int | None] = []
    for call in node.aggregates:
        if call.argument is None:
            arg_positions.append(None)
        elif (
            type(call.argument) is BoundColumn
            and call.argument.alias == alias
        ):
            arg_positions.append(call.argument.position)
        else:
            return None
    positions = tuple(arg_positions)
    key_positions = tuple(column.position for column in node.group_by)
    aggregates = tuple(node.aggregates)
    program = _program(node, ctx, _build_aggregate)
    having = program.having
    grouped = bool(node.group_by)

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        having_env = None if having is None else ctx.env(Row(), outer)

        def emit(representative: Row, states) -> Row | None:
            results = tuple([state.result() for state in states])
            out = representative.with_alias(AGGREGATE_ALIAS, results)
            if having is not None:
                having_env.row = out
                if having(having_env) is not True:
                    return None
            return out

        scan = open_scan(scan_node, scan_program, ctx, outer)
        emitted: list[Row] = []
        current_key: object = None
        representative: Row | None = None
        states: list = []
        saw_rows = False
        if scan is not None:
            count_rsi = ctx.storage.counters.count_rsi_call
            for batch in scan.batches():
                count_rsi(len(batch))
                for tid, values in batch:
                    key = tuple([values[p] for p in key_positions])
                    if not saw_rows or key != current_key:
                        if representative is not None:
                            out = emit(representative, states)
                            if out is not None:
                                emitted.append(out)
                        current_key = key
                        representative = Row(
                            values={alias: values}, tids={alias: tid}
                        )
                        states = [_AggState(call) for call in aggregates]
                    saw_rows = True
                    for state, position in zip(states, positions):
                        state.add(
                            None if position is None else values[position]
                        )
        if representative is not None:
            out = emit(representative, states)
            if out is not None:
                emitted.append(out)
        elif not saw_rows and not grouped:
            # Aggregates over an empty input still produce one row.
            out = emit(Row(), [_AggState(call) for call in aggregates])
            if out is not None:
                emitted.append(out)
        if emitted:
            yield emitted

    return driver


def _distinct_driver(node: DistinctNode, ctx: ExecContext) -> BatchDriver:
    source = _fused_program(node.child, ctx)

    def driver(ctx: ExecContext, outer: EvalEnv | None):
        seen: set[tuple] = set()
        add = seen.add
        for batch in source(ctx, outer):
            out = []
            append = out.append
            for row in batch:
                key = row.values[OUTPUT_ALIAS]
                if key not in seen:
                    add(key)
                    append(row)
            if out:
                yield out

    return driver


# ---------------------------------------------------------------------------
# output-tuple fast path
# ---------------------------------------------------------------------------


def _output_program(node: PlanNode, ctx: ExecContext) -> BatchDriver:
    cache = node.compiled
    key = "parallel_out" if ctx.parallel else "fused_out"
    if key not in cache:
        cache[key] = _build_output(node, ctx)
    return cache[key]


def _build_output(node: PlanNode, ctx: ExecContext) -> BatchDriver:
    """A driver yielding batches of bare output tuples (no ``Row``s)."""
    if isinstance(node, DistinctNode):
        source = _output_program(node.child, ctx)

        def distinct_driver(ctx: ExecContext, outer: EvalEnv | None):
            seen: set[tuple] = set()
            add = seen.add
            for batch in source(ctx, outer):
                out = []
                append = out.append
                for item in batch:
                    if item not in seen:
                        add(item)
                        append(item)
                if out:
                    yield out

        return distinct_driver
    if isinstance(node, ProjectNode):
        project, filters, bottom = _collapse(node)
        assert project is not None
        if isinstance(bottom, ScanNode):
            if ctx.parallel:
                from .parallel import parallel_output_driver

                driver = parallel_output_driver(bottom, filters, project, ctx)
                if driver is not None:
                    return driver
            return _scan_output_driver(bottom, filters, project, ctx)
        preds = [_program(f, ctx, _build_filter) for f in filters]
        return _row_output_driver(
            _fused_program(bottom, ctx), preds, project, ctx
        )

    # No projection at the root (defensive): read the materialized alias.
    source = _fused_program(node, ctx)

    def alias_driver(ctx: ExecContext, outer: EvalEnv | None):
        for batch in source(ctx, outer):
            yield [row.values[OUTPUT_ALIAS] for row in batch]

    return alias_driver


def _scan_output_driver(
    scan_node: ScanNode,
    filters: list[FilterNode],
    project: ProjectNode,
    ctx: ExecContext,
) -> BatchDriver:
    """``Scan→Filter*→Project`` emitting output tuples directly.

    When the whole select list is plain columns of the scanned relation
    the projection collapses to a single :func:`operator.itemgetter` over
    the decoded storage tuple — no environment, no ``Row``, no closure
    calls per column.
    """
    program = _program(scan_node, ctx, _build_scan)
    alias = scan_node.alias
    preds = [program.residual]
    preds.extend(_program(f, ctx, _build_filter) for f in filters)
    test = _combine(preds)
    fns = _program(project, ctx, _build_project)
    fast = _columns_getter(project.exprs, alias)

    if test is None and fast is not None:

        def direct_driver(ctx: ExecContext, outer: EvalEnv | None):
            scan = open_scan(scan_node, program, ctx, outer)
            if scan is None:
                return
            count_rsi = ctx.storage.counters.count_rsi_call
            for batch in scan.batches():
                count_rsi(len(batch))
                yield [fast(values) for __, values in batch]

        return direct_driver

    if test is None:

        def project_driver(ctx: ExecContext, outer: EvalEnv | None):
            scan = open_scan(scan_node, program, ctx, outer)
            if scan is None:
                return
            count_rsi = ctx.storage.counters.count_rsi_call
            env = ctx.env(Row(), outer)
            for batch in scan.batches():
                count_rsi(len(batch))
                out = []
                append = out.append
                for __, values in batch:
                    env.row = Row(values={alias: values})
                    append(tuple([fn(env) for fn in fns]))
                yield out

        return project_driver

    if fast is not None:

        def filtered_direct_driver(ctx: ExecContext, outer: EvalEnv | None):
            scan = open_scan(scan_node, program, ctx, outer)
            if scan is None:
                return
            count_rsi = ctx.storage.counters.count_rsi_call
            env = ctx.env(Row(), outer)
            for batch in scan.batches():
                count_rsi(len(batch))
                out = []
                append = out.append
                for __, values in batch:
                    env.row = Row(values={alias: values})
                    if test(env):
                        append(fast(values))
                if out:
                    yield out

        return filtered_direct_driver

    def chain_driver(ctx: ExecContext, outer: EvalEnv | None):
        scan = open_scan(scan_node, program, ctx, outer)
        if scan is None:
            return
        count_rsi = ctx.storage.counters.count_rsi_call
        env = ctx.env(Row(), outer)
        for batch in scan.batches():
            count_rsi(len(batch))
            out = []
            append = out.append
            for __, values in batch:
                env.row = Row(values={alias: values})
                if test(env):
                    append(tuple([fn(env) for fn in fns]))
            if out:
                yield out

    return chain_driver


def _row_output_driver(
    source: BatchDriver, preds, project: ProjectNode, ctx: ExecContext
) -> BatchDriver:
    """``Filter*→Project`` over a breaker's batches, emitting bare tuples."""
    test = _combine(preds)
    fns = _program(project, ctx, _build_project)

    if test is None:

        def project_driver(ctx: ExecContext, outer: EvalEnv | None):
            env = ctx.env(Row(), outer)
            for batch in source(ctx, outer):
                out = []
                append = out.append
                for row in batch:
                    env.row = row
                    append(tuple([fn(env) for fn in fns]))
                yield out

        return project_driver

    def chain_driver(ctx: ExecContext, outer: EvalEnv | None):
        env = ctx.env(Row(), outer)
        for batch in source(ctx, outer):
            out = []
            append = out.append
            for row in batch:
                env.row = row
                if test(env):
                    append(tuple([fn(env) for fn in fns]))
            if out:
                yield out

    return chain_driver


# ---------------------------------------------------------------------------
# plan inspection (repro check --fusion)
# ---------------------------------------------------------------------------


def _collect_chains(node: PlanNode, chains: list[str]) -> None:
    if isinstance(node, (ProjectNode, FilterNode, ScanNode)):
        project, filters, bottom = _collapse(node)
        label_parts: list[str] = []
        if project is not None:
            label_parts.append("project")
        if filters:
            label_parts.append(f"filter x{len(filters)}")
        if isinstance(bottom, ScanNode):
            suffix = " +residual" if bottom.residual else ""
            label_parts.append(f"scan {bottom.alias}{suffix}")
            chains.append(" <- ".join(label_parts))
            return
        if label_parts:
            chains.append(" <- ".join(label_parts) + " <- [breaker batches]")
        _collect_chains(bottom, chains)
        return
    if isinstance(node, MergeJoinNode):
        chains.append("merge join (fused outer, tuple-at-a-time inner)")
        _collect_chains(node.outer, chains)
        if isinstance(node.inner, SortNode):
            _collect_chains(node.inner.child, chains)
        return
    if isinstance(node, NestedLoopJoinNode):
        chains.append(
            f"nested-loop join (inlined inner scan {node.inner.alias})"
        )
        _collect_chains(node.outer, chains)
        return
    if isinstance(node, HashJoinNode):
        grace = f", grace x{node.partitions}" if node.partitions > 1 else ""
        chains.append(
            f"hash join (build {node.inner.alias}{grace}, fused probe)"
        )
        _collect_chains(node.outer, chains)
        return
    for child in node.children():
        _collect_chains(child, chains)
