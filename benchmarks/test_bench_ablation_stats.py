"""A4 — ablation: optimizer statistics ON vs OFF.

"We assume that a lack of statistics implies that the relation is small" —
without UPDATE STATISTICS the optimizer falls back to arbitrary defaults
(1/10 selectivities, NCARD=10) and its access-path choices degrade.  The
bench plans the same query suite with and without statistics and measures
both plan sets cold.
"""

from conftest import measure_cold, weighted
from repro.optimizer.explain import plan_summary
from repro.workloads import FIG1_QUERY, build_empdept

QUERIES = [
    ("point lookup", "SELECT NAME FROM EMP WHERE DNO = 3"),
    ("unselective range", "SELECT NAME FROM EMP WHERE SAL > 0.0"),
    ("fig1 join", FIG1_QUERY),
    (
        "join + filters",
        "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO "
        "AND LOC = 'DENVER' AND SAL > 500.0",
    ),
    (
        # Without statistics every relation "is small", so join-order
        # decisions degenerate to FROM-list habits; putting the big table
        # first makes the blind choice expensive.
        "join order trap",
        "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO "
        "AND DNAME = 'DEPT7'",
    ),
]


def test_statistics_ablation(report, benchmark):
    db = build_empdept(employees=2000, departments=50, jobs=5, seed=42)

    def plan_suite():
        return {label: db.plan(sql) for label, sql in QUERIES}

    with_stats = benchmark(plan_suite)

    saved_relation = {
        t.name: db.catalog.relation_stats(t.name) for t in db.catalog.tables()
    }
    saved_index = {
        i.name: db.catalog.index_stats(i.name)
        for t in db.catalog.tables()
        for i in db.catalog.indexes_on(t.name)
    }
    db.catalog.clear_statistics()
    without_stats = plan_suite()
    # Restore statistics so execution-time measurements are fair.
    for name, stats in saved_relation.items():
        if stats is not None:
            db.catalog.set_relation_stats(name, stats)
    for name, stats in saved_index.items():
        if stats is not None:
            db.catalog.set_index_stats(name, stats)

    rows = []
    total_with = total_without = 0.0
    for label, __ in QUERIES:
        for mode, planned in (("with", with_stats[label]), ("without", without_stats[label])):
            measured, ___ = measure_cold(db, planned)
            cost = weighted(measured, planned.w)
            if mode == "with":
                total_with += cost
            else:
                total_without += cost
            rows.append(
                [label, mode, cost, plan_summary(planned.root)[:64]]
            )

    report.line("A4 — statistics ON vs OFF (measured cost of chosen plans)")
    report.table(
        ["query", "stats", "meas cost", "plan"],
        rows,
        widths=[20, 9, 12, 66],
    )
    report.line()
    report.line(
        f"suite total: with stats {total_with:.1f}, without {total_without:.1f}"
    )
    report.line(
        "Observation: on this schema the defaults often reach the same plan"
    )
    report.line(
        "(ties break luckily); the decisive statistics are the key ranges"
    )
    report.line("behind Table 1's interpolation, isolated below.")
    report.line()

    # -- interpolation trap: two indexed ranges, one truly selective ---------
    from repro import Database
    from repro.workloads import load_rows

    trap = Database(buffer_pages=8)
    trap.execute(
        "CREATE TABLE R (A INTEGER, B INTEGER, PAD VARCHAR(52))"
    )
    load_rows(
        trap,
        "R",
        [((i * 13) % 100, (i * 7) % 100, "x" * 44) for i in range(3000)],
    )
    # B's index first: the no-statistics tie-break lands on it.
    trap.execute("CREATE INDEX R_B ON R (B)")
    trap.execute("CREATE INDEX R_A ON R (A)")
    trap.execute("UPDATE STATISTICS")
    trap_sql = "SELECT A FROM R WHERE B > 5 AND A > 95"

    with_plan = trap.plan(trap_sql)
    with_measured, __ = measure_cold(trap, with_plan)
    trap.catalog.clear_statistics()
    without_plan = trap.plan(trap_sql)
    trap.execute("UPDATE STATISTICS")  # restore for fair execution
    without_measured, __ = measure_cold(trap, without_plan)

    with_cost = weighted(with_measured, with_plan.w)
    without_cost = weighted(without_measured, without_plan.w)
    report.line("interpolation trap: WHERE B > 5 AND A > 95 (both indexed)")
    report.line(
        f"  with stats:    {plan_summary(with_plan.root):<40} "
        f"measured {with_cost:.1f}"
    )
    report.line(
        f"  without stats: {plan_summary(without_plan.root):<40} "
        f"measured {without_cost:.1f}"
    )
    report.line(
        f"  degradation without statistics: {without_cost / with_cost:.1f}x"
    )

    # The interpolation-driven choice must be strictly better.
    assert with_cost < without_cost
    # And across the whole suite, statistics never hurt by much.
    assert total_with <= total_without * 1.3
