"""The durable page layer: CoW frames, atomic flips, torn-page detection."""

import json
import zlib

import pytest

from repro.errors import RecoveryError, StorageError, TornPageError
from repro.rss.disk import PAGE_TABLE_SUFFIX, DiskManager
from repro.rss.faults import FaultPlan, fault_plan, get_injector
from repro.rss.page import PAGE_SIZE


@pytest.fixture(autouse=True)
def _disarm():
    yield
    get_injector().disarm()


def open_disk(tmp_path, name="db.pages"):
    return DiskManager(tmp_path / name)


class TestPersistence:
    def test_commit_then_reopen_roundtrip(self, tmp_path):
        disk = open_disk(tmp_path)
        disk.commit({1: b"alpha", 2: b"b" * PAGE_SIZE}, [], next_page_id=3)
        disk.close()
        again = open_disk(tmp_path)
        assert again.page_ids() == [1, 2]
        assert again.read_page(1) == b"alpha"
        assert again.read_page(2) == b"b" * PAGE_SIZE
        assert again.next_page_id == 3
        again.close()

    def test_multi_frame_pages(self, tmp_path):
        disk = open_disk(tmp_path)
        big = bytes(range(256)) * 64  # 16 KiB -> 4 frames
        disk.commit({7: big}, [], next_page_id=8)
        disk.close()
        again = open_disk(tmp_path)
        assert again.read_page(7) == big
        again.close()

    def test_free_then_commit_removes_page(self, tmp_path):
        disk = open_disk(tmp_path)
        disk.commit({1: b"x", 2: b"y"}, [], next_page_id=3)
        disk.commit({}, [1], next_page_id=3)
        disk.close()
        again = open_disk(tmp_path)
        assert again.page_ids() == [2]
        with pytest.raises(RecoveryError):
            again.read_page(1)
        again.close()

    def test_cow_reuses_freed_frames(self, tmp_path):
        """Rewriting a page over and over cannot grow the file unboundedly:
        after the flip, superseded frames return to the free list."""
        disk = open_disk(tmp_path)
        for round_number in range(20):
            disk.commit({1: f"v{round_number}".encode()}, [], next_page_id=2)
        # one live frame plus at most one superseded frame in flight
        assert disk._frame_count <= 2
        assert disk.read_page(1) == b"v19"
        disk.close()

    def test_audit_clean_after_workload(self, tmp_path):
        disk = open_disk(tmp_path)
        disk.commit({1: b"a", 2: b"b", 3: b"c"}, [], next_page_id=4)
        disk.commit({2: b"B" * 5000}, [3], next_page_id=4)
        assert disk.audit() == []
        disk.close()


class TestTornPages:
    def test_flipped_bytes_detected_and_named(self, tmp_path):
        disk = open_disk(tmp_path)
        disk.commit({5: b"payload" * 100}, [], next_page_id=6)
        disk.close()
        frame_file = tmp_path / "db.pages"
        data = bytearray(frame_file.read_bytes())
        data[10] ^= 0xFF
        frame_file.write_bytes(bytes(data))
        again = open_disk(tmp_path)
        with pytest.raises(TornPageError) as excinfo:
            again.read_page(5)
        assert excinfo.value.page_id == 5
        assert "page 5" in str(excinfo.value)
        assert any("checksum" in problem for problem in again.audit())
        again.close()

    def test_corrupt_page_table_refused(self, tmp_path):
        disk = open_disk(tmp_path)
        disk.commit({1: b"x"}, [], next_page_id=2)
        disk.close()
        table_file = tmp_path / ("db.pages" + PAGE_TABLE_SUFFIX)
        raw = json.loads(table_file.read_text())
        raw["body"]["next_page_id"] = 999  # body no longer matches crc
        table_file.write_text(json.dumps(raw))
        with pytest.raises(RecoveryError, match="checksum"):
            open_disk(tmp_path)

    def test_missing_page_table_refused(self, tmp_path):
        disk = open_disk(tmp_path)
        disk.commit({1: b"x"}, [], next_page_id=2)
        disk.close()
        (tmp_path / ("db.pages" + PAGE_TABLE_SUFFIX)).unlink()
        with pytest.raises(RecoveryError, match="page table"):
            open_disk(tmp_path)

    def test_double_booked_frames_refused(self, tmp_path):
        disk = open_disk(tmp_path)
        disk.commit({1: b"x", 2: b"y"}, [], next_page_id=3)
        disk.close()
        table_file = tmp_path / ("db.pages" + PAGE_TABLE_SUFFIX)
        raw = json.loads(table_file.read_text())
        pages = raw["body"]["pages"]
        pages["2"][0] = pages["1"][0]  # point page 2 at page 1's frame
        raw["crc"] = zlib.crc32(
            json.dumps(raw["body"], sort_keys=True).encode()
        )
        table_file.write_text(json.dumps(raw))
        with pytest.raises(RecoveryError, match="double-booked"):
            open_disk(tmp_path)


class TestAtomicCommit:
    def test_failed_commit_leaves_committed_state(self, tmp_path):
        disk = open_disk(tmp_path)
        disk.commit({1: b"committed"}, [], next_page_id=2)
        with fault_plan(FaultPlan("fsync", hit=1)):
            with pytest.raises(StorageError):
                disk.commit({1: b"doomed"}, [], next_page_id=2)
        assert disk.read_page(1) == b"committed"
        disk.close()
        again = open_disk(tmp_path)
        assert again.read_page(1) == b"committed"
        again.close()

    def test_staged_frames_recycled_after_failure(self, tmp_path):
        disk = open_disk(tmp_path)
        disk.commit({1: b"v0"}, [], next_page_id=2)
        frames_before = disk._frame_count
        for _ in range(10):
            with fault_plan(FaultPlan("pagetable.write", hit=1)):
                with pytest.raises(StorageError):
                    disk.commit({1: b"vX"}, [], next_page_id=2)
        disk.commit({1: b"v1"}, [], next_page_id=2)
        # staged frames from the failures were returned to the free list,
        # so the file grew by at most one frame
        assert disk._frame_count <= frames_before + 1
        assert disk.read_page(1) == b"v1"
        disk.close()

    def test_crash_before_flip_recovers_old_state(self, tmp_path):
        disk = open_disk(tmp_path)
        get_injector().attach_disk(disk)
        disk.commit({1: b"old"}, [], next_page_id=2)
        with fault_plan(FaultPlan("pagetable.flip", hit=1, action="crash")):
            with pytest.raises(StorageError) as excinfo:
                disk.commit({1: b"new"}, [], next_page_id=2)
        snapshot = excinfo.value.snapshot
        disk.close()
        restored = DiskManager.restore(snapshot, tmp_path / "crashed.pages")
        survivor = DiskManager(restored)
        # the shadow frames were written but never referenced: recovery
        # reclaims them and the committed state is the old one
        assert survivor.read_page(1) == b"old"
        assert survivor.audit() == []
        survivor.close()

    def test_frame_file_without_table_refused(self, tmp_path):
        (tmp_path / "db.pages").write_bytes(b"\0" * PAGE_SIZE)
        with pytest.raises(RecoveryError, match="missing"):
            open_disk(tmp_path)
