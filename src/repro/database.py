"""The top-level Database facade: a miniature System R.

``Database`` owns the catalog, the storage engine, the optimizer
configuration, and the executor, and processes SQL statements through the
paper's four phases — parsing, optimization, (interpreted) code generation,
and execution::

    db = Database()
    db.execute("CREATE TABLE EMP (ENO INTEGER, NAME VARCHAR(20), DNO INTEGER)")
    db.execute("CREATE INDEX EMPDNO ON EMP (DNO)")
    db.execute("INSERT INTO EMP VALUES (1, 'SMITH', 50)")
    db.execute("UPDATE STATISTICS")
    result = db.execute("SELECT NAME FROM EMP WHERE DNO = 50")
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from .catalog.catalog import Catalog
from .catalog.statistics import collect_statistics
from .engine.evaluator import EvalEnv, evaluate
from .engine.executor import Executor, QueryResult, Runtime
from .engine.scheduler import resolve_backend, shutdown_backends
from .errors import ExecutionError, SemanticError, StorageError
from .optimizer.cost import DEFAULT_W
from .optimizer.plan import render_plan
from .optimizer.planner import Optimizer, PlannedStatement
from .rss.buffer import DEFAULT_BUFFER_PAGES
from .rss.storage import StorageEngine
from .serving.coordinator import GroupCommitCoordinator
from .serving.locks import DEFAULT_COMMIT_TIMEOUT, RWLatch
from .serving.session import Session
from .sql import ast, parse_statement


@dataclass
class StatementResult:
    """Uniform result for any statement kind."""

    statement_type: str
    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    affected_rows: int = 0
    #: Page-table version this statement's commit landed at (writes only).
    commit_version: int | None = None
    #: Pinned version a session read executed against (reads only).
    snapshot_version: int | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self) -> object:
        """The single value of a one-row, one-column result."""
        return QueryResult(self.columns, self.rows).scalar()


class Database:
    """An in-process relational database with a Selinger-style optimizer."""

    def __init__(
        self,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        w: float = DEFAULT_W,
        use_heuristic: bool = True,
        use_interesting_orders: bool = True,
        subquery_cache_mode: str = "prev",
        exec_mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
        path: str | None = None,
        commit_timeout: float = DEFAULT_COMMIT_TIMEOUT,
        group_commit: bool = True,
    ):
        #: ``path`` opts into durability: statements commit to a
        #: shadow-paged backing file, and re-opening the same path recovers
        #: the last committed catalog and data.  ``None`` (the default)
        #: keeps everything in memory, with identical cost counters.
        self.catalog = Catalog()
        self.storage = StorageEngine(buffer_pages, path=path)
        if self.storage.recovered_catalog is not None:
            self.catalog = self.storage.recovered_catalog
        self.storage.catalog = self.catalog
        self.w = w
        self.use_heuristic = use_heuristic
        self.use_interesting_orders = use_interesting_orders
        self.subquery_cache_mode = subquery_cache_mode
        #: "fused" / "parallel" / "compiled" / "interp" / None (None reads
        #: REPRO_EXEC, default fused) — chooses fused per-batch pipelines
        #: (optionally worker-pool parallel), per-operator closure
        #: programs, or the reference interpreter.
        self.exec_mode = exec_mode
        #: Worker count for ``parallel`` mode; None reads REPRO_WORKERS
        #: (falling back to the CPU count).  Validated eagerly so a bad
        #: count fails at construction, not at the first statement.
        if workers is not None and workers < 1:
            raise ValueError(
                f"bad worker count {workers!r}: expected a positive integer"
            )
        self.workers = workers
        #: Worker-pool backend for ``parallel`` mode: "thread" or
        #: "process"; None reads REPRO_BACKEND (default thread).
        #: Validated eagerly like ``workers``.
        self.backend = resolve_backend(backend)
        #: Override for the planner's §6 correlation-ordering decision;
        #: None derives it from the cache mode.
        self.correlation_ordering: bool | None = None
        #: Schema latch: reads and DML share it, DDL and UPDATE STATISTICS
        #: take it exclusively, so a statement never plans against a
        #: catalog that changes under it.
        self.ddl_latch = RWLatch()
        #: Every write statement — from any session or thread — funnels
        #: through this coordinator: one commit lock, batched page-table
        #: flips, ``DatabaseBusyError`` after ``commit_timeout`` seconds of
        #: contention.  ``group_commit=False`` keeps the pipeline but
        #: degrades each batch to one flip per statement.
        self._coordinator = GroupCommitCoordinator(
            self.storage, timeout=commit_timeout, group_commit=group_commit
        )
        self._session_lock = threading.Lock()
        self._sessions: set[Session] = set()  # concurrency: lock-guarded
        self._closed = False  # concurrency: lock-guarded

    # -- configuration ------------------------------------------------------------

    def optimizer(self) -> Optimizer:
        """A fresh optimizer reflecting the current configuration."""
        return Optimizer(
            self.catalog,
            w=self.w,
            buffer_pages=self.storage.buffer.capacity,
            use_heuristic=self.use_heuristic,
            use_interesting_orders=self.use_interesting_orders,
            # Ordering on a correlated reference only pays off when the
            # runtime skips repeated evaluations (§6).
            correlation_ordering=(
                self.subquery_cache_mode in ("prev", "memo")
                if self.correlation_ordering is None
                else self.correlation_ordering
            ),
        )

    def executor(self) -> Executor:
        """A fresh executor bound to this database's storage and catalog."""
        return Executor(
            self.storage, self.catalog, self.subquery_cache_mode,
            exec_mode=self.exec_mode, workers=self.workers,
            backend=self.backend,
        )

    @property
    def counters(self):
        """Cost counters (page fetches, RSI calls) for measurements."""
        return self.storage.counters

    def cold_cache(self) -> None:
        """Reset counters and empty the buffer pool before a measurement."""
        self.storage.counters.reset()
        self.storage.cold_cache()

    def close(self) -> None:
        """Close every open session and release the backing file.

        Idempotent: closing an already-closed database is a no-op.
        """
        with self._session_lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions)
            self._sessions.clear()
        for session in sessions:
            session.close()
        self.storage.close()
        # Worker pools are process-wide (shared across Database instances
        # by design — they hold no per-database state), so closing the
        # last database of a long-lived serving process reclaims them;
        # concurrent databases simply re-create pools on next use.
        shutdown_backends()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- sessions -----------------------------------------------------------

    def session(self, name: str | None = None) -> Session:
        """Open a client session (snapshot-isolated reads, queued writes).

        One session per client thread; close it (or use it as a context
        manager) when the client is done.  :meth:`close` closes any
        sessions still open.
        """
        if self._closed:
            raise StorageError("database is closed")
        session = Session(self, name)
        with self._session_lock:
            self._sessions.add(session)
        return session

    def _forget_session(self, session: Session) -> None:
        with self._session_lock:
            self._sessions.discard(session)

    # -- statement processing ---------------------------------------------------------

    def execute(self, sql: str) -> StatementResult:
        """Parse, optimize, and execute one SQL statement."""
        statement = parse_statement(sql)
        return self.execute_statement(statement)

    def execute_statement(self, statement: ast.Statement) -> StatementResult:
        """Dispatch an already-parsed statement to DDL, DML, or the optimizer."""
        if isinstance(statement, ast.SelectQuery):
            planned = self.plan_query(statement)
            result = self._run(planned)
            return StatementResult(
                statement_type="SELECT",
                columns=result.columns,
                rows=result.rows,
                affected_rows=len(result.rows),
            )
        return self._execute_write(statement)

    #: Statements that take the schema latch exclusively; everything else
    #: (DML) shares it with concurrent readers.
    _EXCLUSIVE_STATEMENTS = (
        ast.CreateTableStmt,
        ast.CreateIndexStmt,
        ast.DropTableStmt,
        ast.DropIndexStmt,
        ast.UpdateStatisticsStmt,
    )

    def _execute_write(self, statement: ast.Statement) -> StatementResult:
        """Run one write statement through the group-commit pipeline.

        The submitter holds the schema latch for the statement's whole
        trip through the queue, so DDL only ever commits alone (its
        exclusive latch has drained every other writer first) and DML
        batches never contain a schema change.
        """
        latch = (
            self.ddl_latch.exclusive()
            if isinstance(statement, self._EXCLUSIVE_STATEMENTS)
            else self.ddl_latch.shared()
        )
        with latch:
            result, version = self._coordinator.submit(
                lambda: self._apply_write(statement)
            )
        return replace(result, commit_version=version)

    def _apply_write(self, statement: ast.Statement) -> StatementResult:
        """The statement body run by the group-commit leader (any thread)."""
        if isinstance(statement, ast.CreateTableStmt):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateIndexStmt):
            return self._create_index(statement)
        if isinstance(statement, ast.DropTableStmt):
            return self._drop_table(statement)
        if isinstance(statement, ast.DropIndexStmt):
            return self._drop_index(statement)
        if isinstance(statement, ast.InsertStmt):
            return self._insert(statement)
        if isinstance(statement, ast.UpdateStmt):
            return self._update(statement)
        if isinstance(statement, ast.DeleteStmt):
            return self._delete(statement)
        if isinstance(statement, ast.UpdateStatisticsStmt):
            with self.storage.atomic():
                collect_statistics(
                    self.catalog, self.storage, statement.table_name
                )
            return StatementResult(statement_type="UPDATE STATISTICS")
        raise ExecutionError(f"unsupported statement {statement!r}")

    def query(self, sql: str) -> StatementResult:
        """Alias of :meth:`execute` for read queries."""
        return self.execute(sql)

    def plan(self, sql: str) -> PlannedStatement:
        """Parse and optimize without executing."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectQuery):
            raise SemanticError("plan() accepts SELECT statements only")
        return self.plan_query(statement)

    def plan_query(self, query: ast.SelectQuery) -> PlannedStatement:
        """Optimize a parsed SELECT under the current configuration."""
        return self.optimizer().plan_query(query)

    def explain(self, sql: str) -> str:
        """Human-readable plan for a SELECT statement."""
        planned = self.plan(sql)
        header = (
            f"estimated cost: {planned.estimated_total():.2f} "
            f"({planned.estimated_cost}) QCARD~{planned.qcard:.1f}"
        )
        return header + "\n" + render_plan(planned.root, w=planned.w)

    def update_statistics(self, table_name: str | None = None) -> None:
        """Programmatic UPDATE STATISTICS (one table, or all)."""
        collect_statistics(self.catalog, self.storage, table_name)

    # -- DDL ----------------------------------------------------------------------------

    def _create_table(self, statement: ast.CreateTableStmt) -> StatementResult:
        table = self.catalog.create_table(
            statement.table_name,
            [(spec.name, spec.datatype) for spec in statement.columns],
            segment_name=statement.segment_name,
        )
        with self.storage.atomic():
            self.storage.ensure_segment(table.segment_name)
        return StatementResult(statement_type="CREATE TABLE")

    def _create_index(self, statement: ast.CreateIndexStmt) -> StatementResult:
        index = self.catalog.create_index(
            statement.index_name,
            statement.table_name,
            list(statement.column_names),
            unique=statement.unique,
            clustered=statement.clustered,
        )
        table = self.catalog.table(statement.table_name)
        try:
            with self.storage.atomic():
                self.storage.create_index(index, table)
                if statement.clustered:
                    self.storage.cluster_table(
                        table, index, self.catalog.indexes_on(table.name)
                    )
                # "Initial relation loading and index creation initialize
                # these statistics" — keep the habit.
                collect_statistics(self.catalog, self.storage, table.name)
        except Exception:
            self.catalog.drop_index(index.name)
            raise
        return StatementResult(statement_type="CREATE INDEX")

    def _drop_table(self, statement: ast.DropTableStmt) -> StatementResult:
        table = self.catalog.table(statement.table_name)
        with self.storage.atomic():
            for index in self.catalog.indexes_on(table.name):
                self.storage.drop_index(index.name)
            with self.storage.suppress_counting():
                for tid, values in list(self.storage._raw_scan(table)):
                    self.storage.segment(table.segment_name).delete(tid)
            self.catalog.drop_table(table.name)
        return StatementResult(statement_type="DROP TABLE")

    def _drop_index(self, statement: ast.DropIndexStmt) -> StatementResult:
        index = self.catalog.drop_index(statement.index_name)
        try:
            with self.storage.atomic():
                self.storage.drop_index(index.name)
        except BaseException:
            self.catalog.add_index(index)
            raise
        return StatementResult(statement_type="DROP INDEX")

    # -- DML ----------------------------------------------------------------------------

    def _insert(self, statement: ast.InsertStmt) -> StatementResult:
        table = self.catalog.table(statement.table_name)
        indexes = self.catalog.indexes_on(table.name)
        if statement.column_names is None:
            positions = list(range(len(table.columns)))
        else:
            positions = [
                table.column_position(name.upper())
                for name in statement.column_names
            ]
        if statement.source is not None:
            # INSERT ... SELECT: run the query first, then load its rows
            # (materialized, so inserting into the scanned table is safe).
            source_rows = self._run(self.plan_query(statement.source)).rows
        else:
            source_rows = [
                tuple(_constant_value(expr) for expr in row_exprs)
                for row_exprs in statement.rows
            ]
        count = 0
        with self.storage.atomic():
            for row in source_rows:
                if len(row) != len(positions):
                    raise SemanticError(
                        f"INSERT supplies {len(row)} values for "
                        f"{len(positions)} columns"
                    )
                values: list[object] = [None] * len(table.columns)
                for position, value in zip(positions, row):
                    values[position] = table.columns[position].datatype.validate(
                        value
                    )
                self.storage.insert(table, indexes, tuple(values))
                count += 1
        return StatementResult(statement_type="INSERT", affected_rows=count)

    def _target_rows(self, table_name: str, where: ast.Expr | None):
        """Plan and run the access to a DML statement's target tuples."""
        query = ast.SelectQuery(
            select_items=(),
            from_tables=(ast.TableRef(table_name.upper(), table_name.upper()),),
            where=where,
        )
        planned = self.plan_query(query)
        executor = Executor(
            self.storage, self.catalog, self.subquery_cache_mode,
            exec_mode=self.exec_mode, workers=self.workers,
            backend=self.backend,
        )
        return planned, list(executor.execute_rows(planned))

    def _update(self, statement: ast.UpdateStmt) -> StatementResult:
        table = self.catalog.table(statement.table_name)
        indexes = self.catalog.indexes_on(table.name)
        planned, rows = self._target_rows(statement.table_name, statement.where)
        alias = table.name
        assignments = [
            (
                table.column_position(column.upper()),
                self._bind_dml_expr(expr, table, alias),
            )
            for column, expr in statement.assignments
        ]
        runtime = Runtime(self.storage, self.catalog, planned)
        count = 0
        with self.storage.atomic():
            for row in rows:
                old_values = row.values[alias]
                env = EvalEnv(row=row, runtime=runtime)
                new_values = list(old_values)
                for position, bound in assignments:
                    value = evaluate(bound, env)
                    new_values[position] = table.columns[
                        position
                    ].datatype.validate(value)
                self.storage.update(
                    table, indexes, row.tids[alias], old_values, tuple(new_values)
                )
                count += 1
        return StatementResult(statement_type="UPDATE", affected_rows=count)

    def _delete(self, statement: ast.DeleteStmt) -> StatementResult:
        table = self.catalog.table(statement.table_name)
        indexes = self.catalog.indexes_on(table.name)
        __, rows = self._target_rows(statement.table_name, statement.where)
        alias = table.name
        count = 0
        with self.storage.atomic():
            for row in rows:
                self.storage.delete(
                    table, indexes, row.tids[alias], row.values[alias]
                )
                count += 1
        return StatementResult(statement_type="DELETE", affected_rows=count)

    def _bind_dml_expr(self, expr: ast.Expr, table, alias: str) -> ast.Expr:
        """Bind a SET-clause expression against the target table."""
        from .optimizer.binder import Binder

        binder = Binder(self.catalog)
        pseudo = ast.SelectQuery(
            select_items=(ast.SelectItem(expr, None),),
            from_tables=(ast.TableRef(table.name, alias),),
        )
        block = binder.bind(pseudo)
        return block.select_exprs[0]

    # -- internals -----------------------------------------------------------------------

    def _run(self, planned: PlannedStatement) -> QueryResult:
        executor = Executor(
            self.storage, self.catalog, self.subquery_cache_mode,
            exec_mode=self.exec_mode, workers=self.workers,
            backend=self.backend,
        )
        self.last_executor = executor
        return executor.execute(planned)


def _constant_value(expr: ast.Expr) -> object:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Negate) and isinstance(expr.operand, ast.Literal):
        value = expr.operand.value
        if isinstance(value, (int, float)):
            return -value
    raise SemanticError("INSERT values must be literals")
