"""The storage engine facade: segments, tables, indexes, and maintenance.

:class:`StorageEngine` owns the page store, the buffer pool, the cost
counters, and all physical structures (segments and B-trees).  Logical
definitions (:class:`~repro.catalog.schema.TableDef`,
:class:`~repro.catalog.schema.IndexDef`) live in the catalog; this engine
maps them to their physical counterparts and keeps indexes consistent with
the data under INSERT / UPDATE / DELETE.

Every mutating entry point runs inside a **statement micro-transaction**
(:meth:`StorageEngine.atomic`): either all of its page, segment, and index
effects land, or none of them do.  A mid-statement exception — including
one injected through :mod:`repro.rss.faults` — rolls the shadow versions
back, so segment/index consistency holds unconditionally.  With a durable
backing file (``path=...``), commit additionally serializes the touched
pages copy-on-write and flips the on-disk page table atomically (see
:mod:`repro.rss.disk`); re-opening the path recovers the last committed
state.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from ..catalog.schema import IndexDef, TableDef
from ..datatypes import DataType
from ..errors import CatalogError, IntegrityError, SimulatedCrash, StorageError
from .btree import BTree
from .buffer import DEFAULT_BUFFER_PAGES, BufferPool
from .counters import CostCounters
from .disk import DiskManager
from .faults import get_injector, register_point
from .page import TupleId
from .pagestore import PageStore
from .sargs import ConjunctiveSargs, Sargs
from .scan import DEFAULT_BATCH_SIZE, IndexScan, SegmentScan
from .segment import Segment
from .tuples import DecodePlan, encode_tuple

FP_GROUP_COMMIT_BEFORE_FLIP = register_point(
    "group-commit.before-flip",
    "a group-commit batch is complete, about to flip the page table",
)


@dataclass(frozen=True)
class ScanSnapshot:
    """Read-only view of one relation's segment for parallel workers.

    The page list is frozen at snapshot time (the same freeze
    :class:`~repro.rss.scan.SegmentScan` performs at open) and
    ``get_page`` reads pages straight from the page store — a plain
    lookup with **no** buffer-pool traffic and **no** counter effects.
    The statement's driving thread owns the cost trace: it replays
    ``BufferPool.fetch`` over these page ids in serial order while
    workers consume the snapshot.
    """

    page_ids: tuple[int, ...]
    relation_id: int
    get_page: Callable[[int], object]

    def freeze_range(self, lo: int, hi: int) -> tuple:
        """Materialize pages ``lo:hi`` as picklable ``(page_id, Page)`` pairs.

        ``get_page`` is a bound method (often over the live page store or
        a pinned session version) and cannot cross a process boundary;
        the pages themselves are plain frozen dataclasses and can.  The
        driving thread freezes each morsel's pages up front and ships
        them to the worker process.
        """
        return tuple(
            (page_id, self.get_page(page_id))
            for page_id in self.page_ids[lo:hi]
        )


@dataclass(frozen=True)
class CommittedMeta:
    """Frozen physical metadata as of one committed version.

    Published atomically with each version bump (under the page-store
    lock), so a session that pins a version receives the segment page
    lists and B-tree scalars that describe exactly that version.  The
    dicts are built fresh per publish and never mutated afterwards.
    """

    #: segment name -> its page ids at commit time.
    segments: dict[str, tuple[int, ...]]
    #: index name -> (key_types, root page, first leaf page, entry count).
    indexes: dict[str, tuple]


class StorageEngine:
    """Physical storage for a database instance."""

    def __init__(
        self,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        path: str | None = None,
    ):
        self.counters = CostCounters()
        disk = DiskManager(path) if path is not None else None
        self.store = PageStore(disk)
        self.buffer = BufferPool(self.store, self.counters, buffer_pages)
        self._segments: dict[str, Segment] = {}
        self._indexes: dict[str, BTree] = {}
        #: Catalog to persist on the metadata page (set by ``Database``).
        self.catalog: object | None = None
        #: Catalog recovered from the backing file, if any.
        self.recovered_catalog: object | None = None
        self._in_tx = False
        self._batch = False  # concurrency: driver-confined
        self._batch_meta = None  # concurrency: driver-confined
        self._crashed = False  # concurrency: driver-confined
        #: Guards re-publication of the frozen committed-metadata snapshot.
        self._meta_latch = threading.Lock()
        if disk is not None:
            get_injector().attach_disk(disk)
            if disk.page_ids():
                self._recover(disk)
        self._committed_meta = self._build_committed_meta()

    def _recover(self, disk: DiskManager) -> None:
        from .recovery import recover

        state = recover(disk)
        self.store.adopt(state.pages, state.next_page_id)
        for name, page_ids in state.meta.segments:
            segment = Segment(name, self.store, self.buffer)
            segment.page_ids = list(page_ids)
            self._segments[name] = segment
        for index_meta in state.meta.indexes:
            self._indexes[index_meta.name] = BTree.from_recovered(
                self.store,
                self.buffer,
                index_meta.key_types,
                index_meta.root_page_id,
                index_meta.first_leaf_page_id,
                index_meta.entry_count,
            )
        self.recovered_catalog = state.meta.catalog

    def close(self) -> None:
        """Release the backing file handle, if any."""
        disk = self.store.disk
        if disk is not None:
            disk.close()
            injector = get_injector()
            if injector._disk is disk:
                injector.attach_disk(None)

    # -- statement micro-transactions -----------------------------------------

    @contextmanager
    def atomic(self):
        """Scope one statement: commit all of its effects, or none.

        Re-entrant — a nested ``atomic`` joins the enclosing statement.  On
        any exception the page store's shadow copies are restored, pages
        allocated by the statement vanish, and segment/index metadata
        reverts, leaving the store exactly as before the statement.  A
        :class:`SimulatedCrash` skips rollback (the "process" is gone); the
        durable state was snapshotted by the fault injector at raise time.
        """
        if self._in_tx:
            yield
            return
        if self._crashed:
            raise StorageError(
                "storage engine crashed (simulated); re-open it from disk"
            )
        self._in_tx = True
        meta = self._snapshot_meta()
        self.store.begin()
        try:
            yield
        except SimulatedCrash:
            self._crashed = True
            raise
        except BaseException:
            self.store.rollback(self.buffer)
            self._restore_meta(meta)
            raise
        else:
            try:
                blob = (
                    self._meta_blob() if self.store.disk is not None else None
                )
                self.store.commit(blob, publish=self._publish_meta)
            except SimulatedCrash:
                self._crashed = True
                raise
            except BaseException:
                self.store.rollback(self.buffer)
                self._restore_meta(meta)
                raise
        finally:
            self._in_tx = False

    # -- group-commit batches ---------------------------------------------------

    def begin_batch(self) -> None:
        """Open a multi-statement transaction for one group-commit batch.

        Individual statements are bracketed with :meth:`statement`; the
        batch lands with :meth:`commit_batch` (one page-table flip) or is
        discarded whole with :meth:`abort_batch`.
        """
        if self._in_tx:
            raise StorageError("a statement transaction is already open")
        if self._crashed:
            raise StorageError(
                "storage engine crashed (simulated); re-open it from disk"
            )
        self._in_tx = True
        self._batch = True
        self._batch_meta = self._snapshot_meta()
        self.store.begin()

    @contextmanager
    def statement(self):
        """Bracket one statement inside an open batch with a savepoint.

        A failing statement rolls back to its savepoint — page effects and
        segment/index metadata alike — leaving its batch peers intact.  A
        :class:`SimulatedCrash` poisons the whole engine, as in
        :meth:`atomic`.
        """
        if not self._batch:
            raise StorageError("no open batch for a statement")
        token = self.store.savepoint()
        meta = self._snapshot_meta()
        try:
            yield
        except SimulatedCrash:
            self._crashed = True
            raise
        except BaseException:
            self.store.rollback_to(token, self.buffer)
            self._restore_meta(meta)
            raise

    def commit_batch(self) -> int:
        """Flip every surviving statement of the batch in one durable commit.

        Returns the new page-table version.  On failure the whole batch
        rolls back (all-or-nothing) and the original exception propagates —
        the caller translates it into per-participant outcomes.
        """
        if not self._batch:
            raise StorageError("no open batch to commit")
        try:
            get_injector().trip(FP_GROUP_COMMIT_BEFORE_FLIP)
            blob = self._meta_blob() if self.store.disk is not None else None
            return self.store.commit(blob, publish=self._publish_meta)
        except SimulatedCrash:
            self._crashed = True
            raise
        except BaseException:
            self.store.rollback(self.buffer)
            self._restore_meta(self._batch_meta)
            raise
        finally:
            self._in_tx = False
            self._batch = False
            self._batch_meta = None

    def abort_batch(self) -> None:
        """Discard the open batch entirely (no commit, no version bump)."""
        if not self._batch:
            raise StorageError("no open batch to abort")
        try:
            self.store.rollback(self.buffer)
            self._restore_meta(self._batch_meta)
        finally:
            self._in_tx = False
            self._batch = False
            self._batch_meta = None

    # -- snapshot pins ----------------------------------------------------------

    def pin_snapshot(self) -> tuple[int, CommittedMeta]:
        """Pin the current committed version for a reader.

        Returns the version and the matching frozen metadata, taken
        atomically under the page-store lock, so the pair can never
        straddle a concurrent commit.  Release with :meth:`unpin`.
        """
        return self.store.pin_snapshot(lambda: self._committed_meta)

    def unpin(self, version: int) -> None:
        """Release a reader pin taken by :meth:`pin_snapshot`."""
        self.store.unpin(version)

    def _build_committed_meta(self) -> CommittedMeta:
        return CommittedMeta(
            segments={
                name: tuple(segment.page_ids)
                for name, segment in self._segments.items()
            },
            indexes={
                name: (tuple(btree.key_types), *btree.state())
                for name, btree in self._indexes.items()
            },
        )

    def _publish_meta(self) -> None:
        with self._meta_latch:
            self._committed_meta = self._build_committed_meta()

    def _snapshot_meta(self):
        """Cheap logical snapshot: segment page lists and B-tree scalars."""
        return (
            {
                name: list(segment.page_ids)
                for name, segment in self._segments.items()
            },
            {
                name: (btree, btree.state())
                for name, btree in self._indexes.items()
            },
        )

    def _restore_meta(self, snapshot) -> None:
        segment_pages, btrees = snapshot
        self._segments = {
            name: segment
            for name, segment in self._segments.items()
            if name in segment_pages
        }
        for name, page_ids in segment_pages.items():
            if name in self._segments:
                self._segments[name].page_ids = page_ids
        self._indexes = {}
        for name, (btree, state) in btrees.items():
            btree.restore_state(state)
            self._indexes[name] = btree

    def _meta_blob(self) -> bytes:
        from .recovery import IndexMeta, StoreMeta, serialize_meta

        return serialize_meta(
            StoreMeta(
                catalog=self.catalog,
                segments=[
                    (name, list(segment.page_ids))
                    for name, segment in self._segments.items()
                ],
                indexes=[
                    IndexMeta(
                        name,
                        *btree.state(),
                        key_types=list(btree.key_types),
                    )
                    for name, btree in self._indexes.items()
                ],
            )
        )

    # -- segments -------------------------------------------------------------

    def create_segment(self, name: str) -> Segment:
        """Create a new, empty segment by name."""
        if name in self._segments:
            raise CatalogError(f"segment {name!r} already exists")
        segment = Segment(name, self.store, self.buffer)
        self._segments[name] = segment
        return segment

    def segment(self, name: str) -> Segment:
        """Look a segment up by name; raises when unknown."""
        try:
            return self._segments[name]
        except KeyError:
            raise StorageError(f"no such segment {name!r}") from None

    def ensure_segment(self, name: str) -> Segment:
        """The named segment, created on first use."""
        if name not in self._segments:
            return self.create_segment(name)
        return self._segments[name]

    # -- tuples -----------------------------------------------------------------

    def insert(
        self, table: TableDef, indexes: list[IndexDef], values: tuple
    ) -> TupleId:
        """Insert a validated tuple and maintain every index on the table."""
        with self.atomic():
            self._check_unique(table, indexes, values, exclude_tid=None)
            record = encode_tuple(
                table.relation_id, values, self._datatypes(table)
            )
            tid = self.segment(table.segment_name).insert(record)
            for index in indexes:
                self.btree(index.name).insert(index.key_of(values), tid)
            return tid

    def delete(
        self, table: TableDef, indexes: list[IndexDef], tid: TupleId, values: tuple
    ) -> None:
        """Remove a tuple and its index entries."""
        with self.atomic():
            self.segment(table.segment_name).delete(tid)
            for index in indexes:
                self.btree(index.name).delete(index.key_of(values), tid)

    def update(
        self,
        table: TableDef,
        indexes: list[IndexDef],
        tid: TupleId,
        old_values: tuple,
        new_values: tuple,
    ) -> TupleId:
        """Rewrite a tuple; the TID changes only if the record had to move."""
        with self.atomic():
            self._check_unique(table, indexes, new_values, exclude_tid=tid)
            record = encode_tuple(
                table.relation_id, new_values, self._datatypes(table)
            )
            new_tid = self.segment(table.segment_name).update(tid, record)
            for index in indexes:
                old_key = index.key_of(old_values)
                new_key = index.key_of(new_values)
                if old_key != new_key or new_tid != tid:
                    btree = self.btree(index.name)
                    btree.delete(old_key, tid)
                    btree.insert(new_key, new_tid)
            return new_tid

    def read_values(self, table: TableDef, tid: TupleId) -> tuple:
        """Decode the tuple at a TID into column values."""
        from .tuples import decode_tuple

        record = self.segment(table.segment_name).read(tid)
        return decode_tuple(record, self._datatypes(table))

    # -- indexes -----------------------------------------------------------------

    def create_index(self, index: IndexDef, table: TableDef) -> BTree:
        """Create a B-tree and bulk-load it from the table's current tuples.

        Index builds are DDL: they run with cost counting suppressed so they
        do not pollute query measurements.
        """
        if index.name in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        with self.atomic():
            key_types = [
                table.column(name).datatype for name in index.column_names
            ]
            btree = BTree(self.store, self.buffer, key_types)
            self._indexes[index.name] = btree
            with self.suppress_counting():
                for tid, values in self._raw_scan(table):
                    key = index.key_of(values)
                    if (
                        index.unique
                        and None not in key
                        and btree.contains_key(key)
                    ):
                        del self._indexes[index.name]
                        raise IntegrityError(
                            f"duplicate key {key!r} while building unique "
                            f"index {index.name!r}"
                        )
                    btree.insert(key, tid)
            return btree

    def drop_index(self, name: str) -> None:
        """Forget an index's physical B-tree and release its node pages."""
        with self.atomic():
            btree = self._indexes.pop(name, None)
            if btree is not None:
                btree.free_pages()

    def btree(self, index_name: str) -> BTree:
        """The physical B-tree behind an index name."""
        try:
            return self._indexes[index_name]
        except KeyError:
            raise StorageError(f"no such index {index_name!r}") from None

    def cluster_table(
        self, table: TableDef, cluster_index: IndexDef, all_indexes: list[IndexDef]
    ) -> None:
        """Physically reorganize a table into ``cluster_index`` key order.

        This realizes the paper's clustered-index property: after the
        reorganization, tuples adjacent in the index are adjacent on data
        pages, so an index scan touches each data page only once.  The table
        gets a fresh private tail of pages in its segment; all indexes on
        the table are rebuilt with the new TIDs.
        """
        from .btree import orderable_key

        with self.atomic(), self.suppress_counting():
            rows = [values for __, values in self._raw_scan(table)]
            rows.sort(key=lambda values: orderable_key(cluster_index.key_of(values)))
            segment = self.segment(table.segment_name)
            for tid, __ in list(self._raw_scan(table)):
                segment.delete(tid)
            segment.release_empty_pages()
            for index in all_indexes:
                old = self._indexes.pop(index.name, None)
                if old is not None:
                    old.free_pages()
                key_types = [
                    table.column(name).datatype for name in index.column_names
                ]
                self._indexes[index.name] = BTree(
                    self.store, self.buffer, key_types
                )
            datatypes = self._datatypes(table)
            for values in rows:
                record = encode_tuple(table.relation_id, values, datatypes)
                tid = segment.insert(record, append_only=True)
                for index in all_indexes:
                    self.btree(index.name).insert(index.key_of(values), tid)

    # -- scans ------------------------------------------------------------------

    def segment_scan(
        self,
        table: TableDef,
        sargs: "Sargs | ConjunctiveSargs | None" = None,
        matcher: Callable[[tuple], bool] | None = None,
        decode_plan: DecodePlan | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        decode_cache: dict | None = None,
    ) -> SegmentScan:
        """An RSI segment scan over one relation."""
        return SegmentScan(
            self.segment(table.segment_name),
            table.relation_id,
            self._datatypes(table),
            self.buffer,
            self.counters,
            sargs,
            matcher=matcher,
            decode_plan=decode_plan,
            batch_size=batch_size,
            decode_cache=decode_cache,
        )

    def scan_snapshot(self, table: TableDef) -> ScanSnapshot:
        """A frozen page list plus direct page-store access for workers."""
        return ScanSnapshot(
            page_ids=tuple(self.segment(table.segment_name).page_ids),
            relation_id=table.relation_id,
            get_page=self.store.get,
        )

    def index_scan(
        self,
        index: IndexDef,
        table: TableDef,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        sargs: "Sargs | ConjunctiveSargs | None" = None,
        matcher: Callable[[tuple], bool] | None = None,
        decode_plan: DecodePlan | None = None,
        batch_size: int = 1,
        decode_cache: dict | None = None,
    ) -> IndexScan:
        """An RSI index scan with optional key bounds and SARGs."""
        return IndexScan(
            self.btree(index.name),
            self.segment(table.segment_name),
            table.relation_id,
            self._datatypes(table),
            self.buffer,
            self.counters,
            low,
            high,
            low_inclusive,
            high_inclusive,
            sargs,
            matcher=matcher,
            decode_plan=decode_plan,
            batch_size=batch_size,
            decode_cache=decode_cache,
        )

    # -- measurement helpers -------------------------------------------------------

    @contextmanager
    def suppress_counting(self):
        """Run maintenance work without perturbing the cost counters."""
        saved = self.counters.snapshot()
        try:
            yield
        finally:
            self.counters.restore(saved)

    def cold_cache(self) -> None:
        """Empty the buffer pool so the next measurement starts cold."""
        self.buffer.clear()

    # -- internals ---------------------------------------------------------------

    def _datatypes(self, table: TableDef) -> list[DataType]:
        return [column.datatype for column in table.columns]

    def _raw_scan(self, table: TableDef):
        return iter(
            SegmentScan(
                self.segment(table.segment_name),
                table.relation_id,
                self._datatypes(table),
                self.buffer,
                self.counters,
            )
        )

    def _check_unique(
        self,
        table: TableDef,
        indexes: list[IndexDef],
        values: tuple,
        exclude_tid: TupleId | None,
    ) -> None:
        for index in indexes:
            if not index.unique:
                continue
            key = index.key_of(values)
            if None in key:
                continue  # SQL-style: NULLs never collide
            btree = self.btree(index.name)
            for __, tid in btree.scan_range(key, key):
                if tid != exclude_tid:
                    raise IntegrityError(
                        f"duplicate key {key!r} for unique index {index.name!r}"
                    )
