"""DecodePlan and compiled SARG matchers ≡ their reference counterparts.

:class:`repro.rss.tuples.DecodePlan` precomputes the null-bitmap geometry
(and an all-fixed ``struct`` unpack when the schema has no VARCHAR); it must
decode every record byte-for-byte like :func:`repro.rss.tuples.decode_tuple`.
Likewise the matchers built by :func:`repro.rss.sargs.compile_matcher` must
accept exactly the tuples :meth:`Sargs.matches` accepts, including NULL
values and NULL sarg constants.  Batched scans must yield the same tuples
in the same order as tuple-at-a-time iteration, with identical counters.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog
from repro.datatypes import FLOAT, INTEGER, varchar
from repro.rss import StorageEngine
from repro.rss.sargs import (
    CompareOp,
    SargPredicate,
    Sargs,
    compile_matcher,
    predicate_factory,
    type_family,
)
from repro.rss.tuples import DecodePlan, decode_tuple, encode_tuple

MIXED_SCHEMA = [INTEGER, varchar(20), FLOAT]
FIXED_SCHEMA = [INTEGER, FLOAT, INTEGER]


class TestDecodePlan:
    @pytest.mark.parametrize("schema", [MIXED_SCHEMA, FIXED_SCHEMA])
    def test_matches_reference_on_null_patterns(self, schema):
        plan = DecodePlan(schema)
        base = {
            INTEGER: -(2**60),
            FLOAT: 3.25,
        }
        for pattern in itertools.product((True, False), repeat=len(schema)):
            values = tuple(
                (base.get(dt, "héllo") if keep else None)
                for keep, dt in zip(pattern, schema)
            )
            record = encode_tuple(9, values, schema)
            assert plan.decode(record) == decode_tuple(record, schema)

    def test_wide_bitmap(self):
        schema = [INTEGER] * 20
        plan = DecodePlan(schema)
        values = tuple(i if i % 3 else None for i in range(20))
        record = encode_tuple(1, values, schema)
        assert plan.decode(record) == decode_tuple(record, schema) == values

    @settings(max_examples=80, deadline=None)
    @given(
        a=st.none() | st.integers(-(2**62), 2**62),
        s=st.none() | st.text(max_size=20),
        f=st.none() | st.floats(allow_nan=False, width=32),
    )
    def test_random_values_roundtrip(self, a, s, f):
        record = encode_tuple(5, (a, s, f), MIXED_SCHEMA)
        plan = DecodePlan(MIXED_SCHEMA)
        assert plan.decode(record) == decode_tuple(record, MIXED_SCHEMA)


_PROBE_TUPLES = [
    (k, name, g)
    for k in (None, -5, 0, 3, 7, 10)
    for name, g in ((None, None), ("n3", 3), ("zz", 8), ("", 0))
]

_SARG_CASES = [
    Sargs(),  # empty: matches everything
    Sargs.conjunction([SargPredicate(0, CompareOp.EQ, 3)]),
    Sargs.conjunction([SargPredicate(0, CompareOp.EQ, None)]),  # reject all
    Sargs.conjunction(
        [SargPredicate(0, CompareOp.GE, 0), SargPredicate(2, CompareOp.LT, 5)]
    ),
    Sargs(
        [
            [SargPredicate(0, CompareOp.LT, 0)],
            [SargPredicate(2, CompareOp.GE, 8)],
        ]
    ),
    Sargs.conjunction([SargPredicate(1, CompareOp.NE, "n3")]),
    Sargs.conjunction([SargPredicate(1, CompareOp.GT, "")]),
]


class TestCompiledMatchers:
    @pytest.mark.parametrize("sargs", _SARG_CASES)
    def test_matcher_agrees_with_sargs(self, sargs):
        datatypes = [INTEGER, varchar(12), INTEGER]
        matcher = compile_matcher(sargs, datatypes)
        for values in _PROBE_TUPLES:
            expected = sargs.matches(values)
            got = expected if matcher is None else matcher(values)
            assert got == expected, (sargs.groups, values)

    def test_vacuous_sargs_compile_to_none(self):
        assert compile_matcher(Sargs(), [INTEGER]) is None

    @pytest.mark.parametrize("op", list(CompareOp))
    def test_factory_agrees_with_op_evaluate(self, op):
        make = predicate_factory(1, op, type_family(INTEGER))
        for constant in (None, -1, 0, 4):
            matcher = make(constant)
            for probe in (None, -1, 0, 4, 9):
                values = ("pad", probe)
                expected = (
                    probe is not None
                    and constant is not None
                    and op.evaluate(probe, constant)
                )
                assert matcher(values) == expected

    def test_family_mismatch_falls_back(self):
        # A numeric constant against a VARCHAR family must still evaluate
        # through CompareOp (the typed fast path requires matching families).
        make = predicate_factory(0, CompareOp.LT, type_family(varchar(8)))
        matcher = make(5)
        assert matcher((4,)) is True
        assert matcher((9,)) is False


@pytest.fixture
def loaded():
    catalog = Catalog()
    table = catalog.create_table(
        "T", [("K", INTEGER), ("NAME", varchar(12)), ("G", INTEGER)]
    )
    engine = StorageEngine(buffer_pages=16)
    engine.ensure_segment(table.segment_name)
    index = catalog.create_index("T_K", "T", ["K"])
    engine.create_index(index, table)
    for i in range(200):
        engine.insert(table, [index], (i, f"n{i}", i % 8))
    return table, index, engine


class TestBatchedScans:
    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_segment_batches_flatten_to_same_stream(self, loaded, batch_size):
        table, __, engine = loaded
        reference = list(engine.segment_scan(table))
        got = list(engine.segment_scan(table, batch_size=batch_size))
        assert got == reference

    def test_segment_batch_boundaries_are_page_aligned_chunks(self, loaded):
        table, __, engine = loaded
        batches = list(engine.segment_scan(table, batch_size=16).batches())
        assert sum(len(batch) for batch in batches) == 200
        assert all(len(batch) >= 16 for batch in batches[:-1])

    def test_index_scan_default_batch_matches_reference_counters(self, loaded):
        table, index, engine = loaded
        engine.counters.reset()
        engine.cold_cache()
        rows = list(engine.index_scan(index, table, low=(20,), high=(60,)))
        counted = engine.counters.snapshot()
        assert [values[0] for __, values in rows] == list(range(20, 61))
        assert counted.rsi_calls == 41

    def test_counters_count_consumed_tuples_lazily(self, loaded):
        table, __, engine = loaded
        engine.counters.reset()
        scan = engine.segment_scan(table, batch_size=32)
        iterator = iter(scan)
        for __ in range(10):
            next(iterator)
        # Only consumed tuples cross the RSI, batching notwithstanding.
        assert engine.counters.rsi_calls == 10
