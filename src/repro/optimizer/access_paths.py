"""Single-relation access path enumeration (Section 4).

For one relation the optimizer considers a segment scan plus one path per
index.  Each path gets a predicted cost from TABLE 2 using the selectivity
factors of the boolean factors it can exploit, and a produced tuple order
(the index key order, or unordered for segment scans).

The same machinery serves three callers: plain single-relation queries,
the inner relation of a nested-loop join (where join predicates become
*probe* SARGs whose values come from the outer tuple), and the inner
relation of a merge join (ordered, no probes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.catalog import Catalog
from ..catalog.schema import TableDef
from ..rss.sargs import CompareOp
from .cost import Cost, CostModel
from .orders import InterestingOrders, OrderKey, UNORDERED
from .plan import IndexAccess, ScanNode, SegmentAccess
from .predicates import (
    BooleanFactor,
    IndexMatch,
    SargExpression,
    SimpleSarg,
    match_index,
)
from .selectivity import SelectivityEstimator


@dataclass
class PathCandidate:
    """One costed access path with its canonical produced order."""

    node: ScanNode
    order_key: OrderKey

    @property
    def cost(self) -> Cost:
        """The candidate's predicted cost (convenience accessor)."""
        return self.node.cost


def probe_factor(factor: BooleanFactor, sarg: SimpleSarg) -> BooleanFactor:
    """Re-package a join predicate as a sargable local factor on the inner.

    Used for nested-loop joins: with the outer tuple in hand, the join
    predicate behaves exactly like ``column op value``.
    """
    return BooleanFactor(
        expr=factor.expr,
        aliases=frozenset({sarg.column.alias}),
        sarg=SargExpression(((sarg,),)),
        selectivity=factor.selectivity,
    )


def enumerate_paths(
    alias: str,
    table: TableDef,
    local_factors: list[BooleanFactor],
    catalog: Catalog,
    estimator: SelectivityEstimator,
    cost_model: CostModel,
    orders: InterestingOrders,
    probe_factors: list[BooleanFactor] | None = None,
    available_buffer: float | None = None,
) -> list[PathCandidate]:
    """All access paths for one relation given its applicable factors.

    ``local_factors`` are this relation's single-table boolean factors;
    ``probe_factors`` are join predicates already converted by
    :func:`probe_factor`.  ``available_buffer`` costs the paths as a join
    inner (only part of the pool remains for the buffer-fit
    alternatives).  Returns every candidate (the caller prunes).
    """
    probes = probe_factors or []
    sargable = [f for f in local_factors if f.sarg is not None] + probes
    residual = [f.expr for f in local_factors if f.sarg is None]

    ncard = cost_model.ncard(table)
    selectivity_all = _product(
        estimator.factor_selectivity(f) for f in local_factors + probes
    )
    selectivity_sargable = _product(
        estimator.factor_selectivity(f) for f in sargable
    )
    rows_out = ncard * selectivity_all
    rsicard = ncard * selectivity_sargable

    candidates: list[PathCandidate] = []

    # Segment scan: always available, unordered.
    seg_node = ScanNode(
        alias=alias,
        table=table,
        access=SegmentAccess(),
        sargs=[f.sarg for f in sargable if f.sarg is not None],
        residual=list(residual),
        cost=cost_model.segment_scan_cost(table, rsicard),
        rows=rows_out,
        order_columns=(),
    )
    candidates.append(PathCandidate(seg_node, UNORDERED))

    for index in catalog.indexes_on(table.name):
        match = match_index(index, sargable, alias)
        access = _index_access(index, match)
        if match.is_unique_equal:
            cost = cost_model.unique_index_cost()
            path_rows = min(rows_out, 1.0)
        elif match.matches_anything:
            matched_f = _matched_selectivity(match, catalog, estimator)
            cost = cost_model.matching_index_cost(
                index, table, matched_f, rsicard, available_buffer=available_buffer
            )
            path_rows = rows_out
        else:
            cost = cost_model.non_matching_index_cost(
                index, table, rsicard, available_buffer=available_buffer
            )
            path_rows = rows_out
        order_columns = tuple(
            (alias, position) for position in index.key_positions
        )
        order_key = orders.canonicalize(orders.order_key(list(order_columns)))
        node = ScanNode(
            alias=alias,
            table=table,
            access=access,
            sargs=[f.sarg for f in sargable if f.sarg is not None],
            residual=list(residual),
            cost=cost,
            rows=path_rows,
            order_columns=order_columns,
        )
        candidates.append(PathCandidate(node, order_key))
    return candidates


def _matched_selectivity(
    match: IndexMatch, catalog: Catalog, estimator: SelectivityEstimator
) -> float:
    """F of the factors bounding a matching index scan's key range.

    An equality prefix of length k selects ``1 / prefix_icards[k-1]`` of
    the index when the composite prefix cardinality is on file — the
    per-column Table 1 product would miscount correlated key columns and
    columns without their own leading index.  Range factors past the
    prefix (and everything when prefix statistics are missing) keep
    their per-factor Table 1 estimates.
    """
    prefix_length = len(match.equal_prefix)
    stats = catalog.index_stats(match.index.name)
    if (
        prefix_length
        and stats is not None
        and len(stats.prefix_icards) >= prefix_length
        and stats.prefix_icards[prefix_length - 1] > 0
    ):
        # ``matched_factors`` lists the equality factors in prefix order,
        # then the single range factor, so the tail is the range part.
        selectivity = 1.0 / stats.prefix_icards[prefix_length - 1]
        for factor in match.matched_factors[prefix_length:]:
            selectivity *= estimator.factor_selectivity(factor)
        return selectivity
    return _product(
        estimator.factor_selectivity(f) for f in match.matched_factors
    )


def _index_access(index, match: IndexMatch) -> IndexAccess:
    """Build the key bounds an index scan can derive from matched factors."""
    equal_values = tuple(sarg.value for sarg in match.equal_prefix)
    low = list(equal_values)
    high = list(equal_values)
    low_inclusive = True
    high_inclusive = True
    low_extended = False
    high_extended = False
    for sarg in match.range_sargs:
        if sarg.op in (CompareOp.GT, CompareOp.GE) and not low_extended:
            low.append(sarg.value)
            low_inclusive = sarg.op is CompareOp.GE
            low_extended = True
        elif sarg.op in (CompareOp.LT, CompareOp.LE) and not high_extended:
            high.append(sarg.value)
            high_inclusive = sarg.op is CompareOp.LE
            high_extended = True
    return IndexAccess(
        index=index,
        low=tuple(low),
        high=tuple(high),
        low_inclusive=low_inclusive,
        high_inclusive=high_inclusive,
    )


def inner_resident_cap(
    cost_model: CostModel, node: ScanNode, available_buffer: float
) -> float | None:
    """The page cap for repeated probes of a join inner, if it fits.

    When the inner relation's whole footprint (data pages plus the index in
    use) fits in the buffer pages the inner can claim, its total page
    fetches across all probes are bounded by that footprint; otherwise
    None (no cap).
    """
    from .plan import IndexAccess

    index = node.access.index if isinstance(node.access, IndexAccess) else None
    footprint = cost_model.relation_resident_pages(node.table, index)
    if footprint <= available_buffer:
        return footprint
    return None


def _product(values) -> float:
    result = 1.0
    for value in values:
        result *= value
    return result
