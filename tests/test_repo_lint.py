"""The project lint: the repo itself must be clean, and each rule must fire.

Rule tests build a miniature package layout under ``tmp_path`` containing
exactly one violation and assert the lint reports it; the walker rule gets
its own synthetic ``optimizer/plan.py`` so the subclass discovery is
exercised too.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint import lint_repo, plan_node_subclasses


def write(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def by_rule(tmp_path, rule):
    return [v for v in lint_repo(tmp_path) if v.rule == rule]


#: A plan algebra for the synthetic-root tests (two node types).
_FAKE_PLAN = """
    class PlanNode:
        pass

    class AlphaNode(PlanNode):
        pass

    class BetaNode(PlanNode):
        pass
"""


def test_repo_is_lint_clean():
    assert lint_repo() == []


def test_discovers_plan_node_subclasses():
    names = plan_node_subclasses()
    assert "ScanNode" in names
    assert "NestedLoopJoinNode" in names
    assert len(names) >= 8


def test_flags_mutable_default(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/util.py",
        """
        def collect(into=[]):
            return into
        """,
    )
    violations = by_rule(tmp_path, "mutable-default")
    assert len(violations) == 1
    assert "engine/util.py" in violations[0].where


def test_flags_float_eq_in_cost_code(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "optimizer/costing.py",
        """
        def same(a, b):
            return a.pages == b.pages
        """,
    )
    # The identical comparison outside cost modules is allowed.
    write(
        tmp_path,
        "engine/costing.py",
        """
        def same(a, b):
            return a.pages == b.pages
        """,
    )
    violations = by_rule(tmp_path, "float-eq")
    assert len(violations) == 1
    assert "optimizer/costing.py" in violations[0].where


def test_flags_counter_mutation_outside_rss(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/sneaky.py",
        """
        def bump(counters):
            counters.rsi_calls += 1
        """,
    )
    # The same mutation inside rss/ is the storage layer doing its job.
    write(
        tmp_path,
        "rss/counting.py",
        """
        def bump(counters):
            counters.rsi_calls += 1
        """,
    )
    violations = by_rule(tmp_path, "counter-mutation")
    assert len(violations) == 1
    assert "engine/sneaky.py" in violations[0].where


def test_flags_non_exhaustive_walker(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/operators.py",
        """
        def iterate(node):
            if isinstance(node, AlphaNode):
                return []
        """,
    )
    violations = by_rule(tmp_path, "walker-not-exhaustive")
    missing_dispatch = [v for v in violations if "BetaNode" in v.message]
    assert len(missing_dispatch) == 1
    assert "engine/operators.py" in missing_dispatch[0].where


def test_flags_frozenset_in_joinsearch_hot_path(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "optimizer/joins.py",
        """
        class JoinSearch:
            def __init__(self, aliases):
                self._setup = frozenset(aliases)  # allowed: construction

            def _extend(self, subset, alias):
                return frozenset(subset) | {alias}
        """,
    )
    violations = by_rule(tmp_path, "joinsearch-hot-path")
    assert len(violations) == 1
    assert "_extend" in violations[0].message


def test_flags_catalog_lookup_in_joinsearch_hot_path(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "optimizer/joins.py",
        """
        class JoinSearch:
            def __init__(self, catalog):
                self._stats = catalog.relation_stats("T")  # allowed

            def _subset_rows(self, catalog, mask):
                return catalog.relation_stats("T").ncard
        """,
    )
    violations = by_rule(tmp_path, "joinsearch-hot-path")
    assert len(violations) == 1
    assert "relation_stats" in violations[0].message
    assert "_subset_rows" in violations[0].message


def test_joinsearch_rule_ignores_other_classes(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "optimizer/joins.py",
        """
        class Helper:
            def anywhere(self, catalog):
                return catalog.index_stats("I")
        """,
    )
    assert by_rule(tmp_path, "joinsearch-hot-path") == []


def test_flags_interpreter_call_in_executor_loop(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/operators.py",
        """
        def iterate(node):
            if isinstance(node, AlphaNode):  # dispatch outside loops: fine
                return []
            if isinstance(node, BetaNode):
                return []

        def _iter_filter(rows, predicate, runtime):
            for row in rows:
                if evaluate(predicate, row):
                    yield row
        """,
    )
    violations = by_rule(tmp_path, "executor-hot-path")
    assert len(violations) == 1
    assert "evaluate" in violations[0].message


def test_flags_evalenv_and_isinstance_in_scan_loop(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "rss/scan.py",
        """
        def scan(pages, runtime):
            for page in pages:
                assert isinstance(page, Page)  # narrowing assert: exempt
                env = EvalEnv(row=None, runtime=runtime)
                if isinstance(page, DataPage):
                    yield env
        """,
    )
    violations = by_rule(tmp_path, "executor-hot-path")
    assert len(violations) == 2
    messages = " ".join(v.message for v in violations)
    assert "EvalEnv" in messages
    assert "isinstance" in messages


def test_hot_path_rule_covers_temp_and_external_sort(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/temp.py",
        """
        def drain(pages, plan):
            for page in pages:
                yield decode_tuple(page, plan)
        """,
    )
    write(
        tmp_path,
        "engine/external_sort.py",
        """
        def spill(rows, key):
            for row in rows:
                if predicate_holds(key, row):
                    yield row
        """,
    )
    violations = by_rule(tmp_path, "executor-hot-path")
    assert len(violations) == 2
    wheres = " ".join(v.where for v in violations)
    assert "engine/temp.py" in wheres
    assert "engine/external_sort.py" in wheres


def test_flags_hash_build_inside_loop(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/parallel.py",
        """
        def probe_batches(batches, node, program, ctx):
            for batch in batches:
                table = build_hash_table(node, program, ctx, None)
                yield table
        """,
    )
    violations = by_rule(tmp_path, "executor-hot-path")
    assert len(violations) == 1
    assert "build" in violations[0].message


def test_flags_hash_join_handoff_in_fused_loop(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/fuse.py",
        """
        def driver(batches, node, ctx):
            for batch in batches:
                yield list(hash_join_rows(node, ctx, None))
        """,
    )
    violations = by_rule(tmp_path, "executor-hot-path")
    assert len(violations) == 1
    assert "hash_join_rows" in violations[0].message


def test_flags_isinstance_in_compiled_closure(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/compile.py",
        """
        def _compile_like(expr):
            if isinstance(expr, str):  # compile-time dispatch: fine
                pattern = expr

            def run(env):
                operand = env.row
                if isinstance(operand, str):
                    return pattern == operand
                return None

            return run
        """,
    )
    violations = by_rule(tmp_path, "executor-hot-path")
    assert len(violations) == 1
    assert "closure" in violations[0].message


def test_accepts_compiled_hot_loop(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/operators.py",
        """
        def _iter_filter(rows, program, env):
            for row in rows:
                env.row = row
                if program(env) is True:
                    yield row
        """,
    )
    assert by_rule(tmp_path, "executor-hot-path") == []


def test_accepts_exhaustive_walker(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/operators.py",
        """
        def iterate(node):
            if isinstance(node, AlphaNode):
                return []
            if isinstance(node, BetaNode):
                return []
        """,
    )
    violations = by_rule(tmp_path, "walker-not-exhaustive")
    assert not any("engine/operators.py" in v.where for v in violations)

def test_flags_bare_except_in_rss(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "rss/sloppy.py",
        """
        def read(page):
            try:
                return page.decode()
            except:
                return None
        """,
    )
    violations = by_rule(tmp_path, "no-swallowed-exceptions")
    assert len(violations) == 1
    assert "rss/sloppy.py" in violations[0].where


def test_flags_broad_except_without_reraise(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "rss/sloppy.py",
        """
        def read(page):
            try:
                return page.decode()
            except Exception as error:
                log(error)
                return None
        """,
    )
    violations = by_rule(tmp_path, "no-swallowed-exceptions")
    assert len(violations) == 1
    assert "Exception" in violations[0].message


def test_flags_pass_only_handler(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "rss/sloppy.py",
        """
        def close(handle):
            try:
                handle.close()
            except OSError:
                pass
        """,
    )
    violations = by_rule(tmp_path, "no-swallowed-exceptions")
    assert len(violations) == 1


def test_accepts_broad_except_that_reraises(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "rss/careful.py",
        """
        def commit(store):
            try:
                store.flip()
            except BaseException:
                store.undo()
                raise
            except Exception as error:
                raise StorageError(str(error)) from error
        """,
    )
    assert by_rule(tmp_path, "no-swallowed-exceptions") == []


def test_swallow_rule_only_applies_to_rss(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/elsewhere.py",
        """
        def read(page):
            try:
                return page.decode()
            except Exception:
                return None
        """,
    )
    assert by_rule(tmp_path, "no-swallowed-exceptions") == []


def test_flags_generator_handoff_in_fused_loop(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/fuse.py",
        """
        def _chain_driver(batches, node, ctx):
            for batch in batches:
                for row in iterate(node, ctx):
                    yield row
        """,
    )
    violations = by_rule(tmp_path, "executor-hot-path")
    assert len(violations) == 1
    assert "hand-off" in violations[0].message
    assert "iterate" in violations[0].message


def test_flags_iter_operator_handoff_in_fused_loop(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/fuse.py",
        """
        def _sort_driver(node, ctx, batches):
            for batch in batches:
                rows = _iter_sort(node, ctx)
                yield rows
        """,
    )
    violations = by_rule(tmp_path, "executor-hot-path")
    assert len(violations) == 1
    assert "_iter_sort" in violations[0].message


def test_accepts_handoff_outside_fused_loops(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/fuse.py",
        """
        def _lazy_rows(node, ctx):
            return iterate(node, ctx)
        """,
    )
    assert by_rule(tmp_path, "executor-hot-path") == []


def test_handoff_rule_only_applies_to_fuse_module(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/other.py",
        """
        def drain(nodes, ctx):
            for node in nodes:
                yield list(iterate(node, ctx))
        """,
    )
    assert by_rule(tmp_path, "executor-hot-path") == []


def test_fused_build_is_a_registered_walker(tmp_path):
    write(tmp_path, "optimizer/plan.py", _FAKE_PLAN)
    write(
        tmp_path,
        "engine/fuse.py",
        """
        def _build_fused(node, ctx):
            if isinstance(node, AlphaNode):
                return []
        """,
    )
    violations = by_rule(tmp_path, "walker-not-exhaustive")
    missing = [
        v
        for v in violations
        if "engine/fuse.py" in v.where and "BetaNode" in v.message
    ]
    assert len(missing) == 1
