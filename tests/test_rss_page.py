"""Unit tests for slotted pages."""

import pytest

from repro.errors import PageFullError, StorageError
from repro.rss.page import PAGE_SIZE, Page, TupleId


def make_page() -> Page:
    return Page(page_id=1)


class TestPageBasics:
    def test_new_page_is_empty(self):
        page = make_page()
        assert page.slot_count == 0
        assert page.is_empty()
        assert list(page.records()) == []

    def test_insert_and_read(self):
        page = make_page()
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"
        assert not page.is_empty()

    def test_insert_returns_sequential_slots(self):
        page = make_page()
        assert page.insert(b"a") == 0
        assert page.insert(b"b") == 1
        assert page.insert(b"c") == 2

    def test_records_iterates_in_slot_order(self):
        page = make_page()
        page.insert(b"a")
        page.insert(b"b")
        assert [record for __, record in page.records()] == [b"a", b"b"]

    def test_insert_marks_dirty(self):
        page = make_page()
        page.dirty = False
        page.insert(b"x")
        assert page.dirty


class TestPageDelete:
    def test_delete_frees_slot(self):
        page = make_page()
        slot = page.insert(b"payload")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.read(slot)

    def test_deleted_slot_is_reused(self):
        page = make_page()
        slot = page.insert(b"old")
        page.insert(b"keep")
        page.delete(slot)
        assert page.insert(b"new") == slot

    def test_double_delete_raises(self):
        page = make_page()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.delete(slot)

    def test_delete_unknown_slot_raises(self):
        with pytest.raises(StorageError):
            make_page().delete(3)


class TestPageUpdate:
    def test_in_place_update_same_size(self):
        page = make_page()
        slot = page.insert(b"abcd")
        assert page.update(slot, b"wxyz") is True
        assert page.read(slot) == b"wxyz"

    def test_in_place_update_shrinking(self):
        page = make_page()
        slot = page.insert(b"abcdef")
        assert page.update(slot, b"ab") is True
        assert page.read(slot) == b"ab"

    def test_growing_update_reports_failure(self):
        page = make_page()
        slot = page.insert(b"ab")
        assert page.update(slot, b"abcdef") is False
        assert page.read(slot) == b"ab"  # unchanged

    def test_update_empty_slot_raises(self):
        page = make_page()
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.update(slot, b"y")


class TestPageCapacity:
    def test_page_fills_up(self):
        page = make_page()
        record = b"x" * 100
        count = 0
        while page.can_fit(len(record)):
            page.insert(record)
            count += 1
        # 4096 bytes, 4-byte header, 104 bytes per record+slot.
        assert count == (PAGE_SIZE - 4) // 104
        with pytest.raises(PageFullError):
            page.insert(record)

    def test_free_space_decreases(self):
        page = make_page()
        before = page.free_space()
        page.insert(b"12345678")
        assert page.free_space() == before - 8 - 4  # record + slot entry

    def test_page_must_be_exact_size(self):
        with pytest.raises(StorageError):
            Page(1, bytearray(100))


class TestTupleId:
    def test_fields(self):
        tid = TupleId(7, 3)
        assert tid.page_id == 7
        assert tid.slot == 3

    def test_str(self):
        assert str(TupleId(7, 3)) == "(7,3)"

    def test_equality_and_hash(self):
        assert TupleId(1, 2) == TupleId(1, 2)
        assert len({TupleId(1, 2), TupleId(1, 2), TupleId(1, 3)}) == 2
