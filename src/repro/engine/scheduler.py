"""Morsel-driven scheduling and pluggable execution backends.

PR 7 fanned each eligible scan out as *static* contiguous page ranges
(two per worker).  A skewed partition — all the matching tuples clustered
in one range, or a Python-heavy predicate firing on one hot key — then
serializes the pipeline: the worker that drew the hot range runs long
after its siblings go idle.  This module replaces that fan-out with
**morsel-driven scheduling**: a scan decomposes into small fixed-size
page morsels (``REPRO_MORSEL_PAGES``, default 4) that are all submitted
eagerly, so the pool's internal queue *is* the shared work queue and any
idle worker pulls the next morsel — work-stealing by construction, no
per-range assignment to get wrong.  ``REPRO_SCHEDULE=static`` restores
the PR 7 ranges as the measured baseline for ``repro bench --exec
--morsel``.

Counter fidelity is unchanged from the static design because it never
depended on the range shapes: every task counts into a private
:class:`~repro.rss.counters.CostCounters` merged at the gather in
deterministic morsel (submission) order, and the driving thread replays
``BufferPool.fetch`` in serial page order as results drain.  Rows and
counters are therefore bit-identical to the fused engine at any worker
count and any morsel size.

Three backends sit behind one seam — ``imap(tasks)`` yields results in
submission order with eager submission:

- :class:`SerialBackend` runs tasks inline (worker count <= 1).
- :class:`ThreadBackend` drives compiled closures on a reusable
  ``ThreadPoolExecutor`` (GIL-bound; wins only where workers release the
  GIL, but the scheduling and counter discipline are identical).
- :class:`ProcessBackend` (``REPRO_BACKEND=process``) forks a
  ``multiprocessing`` pool and ships **picklable morsel specs** —
  frozen ``(page_id, Page)`` pairs from the scan snapshot plus
  value-bound SARGs (:class:`~repro.rss.sargs.ConjunctiveSargs`) — to
  worker processes, which decode, SARG-match, and project with private
  counters.  This is the first configuration where scan+filter+project
  uses multiple cores.  Closures never cross the process boundary:
  drivers whose per-tuple work is an unpicklable compiled closure return
  raw ``(tid, values)`` chunks and apply the closure at the gather, and
  the probe/sort exchanges pin themselves to the thread backend.

Pools are registered per ``(kind, workers)`` pair and shut down by
:func:`shutdown_backends` — wired to ``Database.close()`` and ``atexit``
so long-lived serving processes do not leak ``repro-worker`` threads or
forked children.  A later statement simply re-creates pools on demand.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from operator import itemgetter
from typing import Iterator

from ..datatypes import DataType
from ..rss.counters import CostCounters
from ..rss.sargs import ConjunctiveSargs, compile_matcher
from ..rss.scan import DEFAULT_BATCH_SIZE, decode_page_rows
from ..rss.tuples import DecodePlan
from .operators import _AggState

#: Pages per morsel: small enough that no task holds a hot range hostage,
#: large enough to amortize per-task dispatch.
DEFAULT_MORSEL_PAGES = 4

#: Every execution backend an entry point may select.
VALID_BACKENDS = ("thread", "process")

#: Scan scheduling policies: ``morsel`` (the default) versus the PR 7
#: ``static`` contiguous ranges, kept as the measurable baseline.
VALID_SCHEDULES = ("morsel", "static")

#: Static schedule: contiguous ranges per worker (the PR 7 fan-out).
STATIC_PARTITIONS_PER_WORKER = 2


def resolve_backend(backend: str | None = None) -> str:
    """The execution backend: ``"thread"`` (default) or ``"process"``.

    ``None`` falls back to the ``REPRO_BACKEND`` environment variable;
    anything else — including a typo — raises a :class:`ValueError`
    naming the valid backends rather than silently running serial.
    """
    choice = backend or os.environ.get("REPRO_BACKEND", "thread")
    if choice not in VALID_BACKENDS:
        raise ValueError(
            f"unknown backend {choice!r}; valid backends: "
            + ", ".join(VALID_BACKENDS)
        )
    return choice


def resolve_schedule(schedule: str | None = None) -> str:
    """The scan scheduling policy: ``"morsel"`` (default) or ``"static"``."""
    choice = schedule or os.environ.get("REPRO_SCHEDULE", "morsel")
    if choice not in VALID_SCHEDULES:
        raise ValueError(
            f"unknown schedule {choice!r}; valid schedules: "
            + ", ".join(VALID_SCHEDULES)
        )
    return choice


def morsel_pages() -> int:
    """Pages per scan morsel, from ``REPRO_MORSEL_PAGES`` (default 4)."""
    text = os.environ.get("REPRO_MORSEL_PAGES")
    if text is None:
        return DEFAULT_MORSEL_PAGES
    try:
        pages = int(text)
    except ValueError:
        pages = 0
    if pages < 1:
        raise ValueError(
            f"bad morsel size {text!r} from REPRO_MORSEL_PAGES: "
            "expected a positive integer"
        )
    return pages


def partition_ranges(count: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into at most ``parts`` contiguous ranges."""
    parts = max(1, min(parts, count))
    base, extra = divmod(count, parts)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def morsel_ranges(count: int, pages: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into fixed-size morsels of ``pages`` pages."""
    return [
        (start, min(start + pages, count)) for start in range(0, count, pages)
    ]


def scan_ranges(page_count: int, workers: int) -> list[tuple[int, int]]:
    """Page ranges for one scan under the configured schedule.

    ``morsel`` emits fixed-size morsels regardless of worker count —
    submitted eagerly, they form the shared queue idle workers steal
    from.  ``static`` reproduces the PR 7 contiguous fan-out (two ranges
    per worker) so the bench can measure steal-vs-static on skew.
    """
    if resolve_schedule() == "static":
        return partition_ranges(
            page_count, workers * STATIC_PARTITIONS_PER_WORKER
        )
    return morsel_ranges(page_count, morsel_pages())


# ---------------------------------------------------------------------------
# execution backends
# ---------------------------------------------------------------------------


class SerialBackend:
    """Runs tasks inline on the driving thread (worker count <= 1)."""

    kind = "serial"
    workers = 1

    def imap(self, tasks) -> Iterator:
        for task in tasks:
            yield task()

    def shutdown(self) -> None:
        """Nothing to release."""


class ThreadBackend:
    """A reusable thread pool yielding task results in submission order.

    Submission is eager (workers race ahead of the gather), delivery is
    ordered — the shape the counter-replay gather needs.
    """

    kind = "thread"

    def __init__(self, workers: int):
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker"
        )

    def imap(self, tasks) -> Iterator:
        futures = [self._pool.submit(task) for task in tasks]
        for future in futures:
            yield future.result()

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessBackend:
    """A forked process pool yielding task results in submission order.

    Tasks must be picklable zero-argument callables over picklable data
    (``functools.partial`` of a module-level function and a frozen
    morsel spec); results and worker exceptions travel back the same
    way, so a failed morsel raises at the gather exactly where a thread
    task would.  Fork start keeps the parent's imports without
    re-executing them.
    """

    kind = "process"

    def __init__(self, workers: int):
        self.workers = workers
        self._pool = multiprocessing.get_context("fork").Pool(
            processes=workers
        )

    def imap(self, tasks) -> Iterator:
        results = [self._pool.apply_async(task) for task in tasks]
        for result in results:
            yield result.get()

    def shutdown(self) -> None:
        self._pool.terminate()
        self._pool.join()


_SERIAL = SerialBackend()

Backend = SerialBackend | ThreadBackend | ProcessBackend


class _BackendRegistry:
    """Worker pools keyed by ``(kind, workers)``, reused across statements."""

    def __init__(self) -> None:
        # Created and read only by statements' driving threads while no
        # worker tasks of their own are in flight; workers never reach it.
        # concurrency: driver-confined
        self._pools: dict[tuple[str, int], ThreadBackend | ProcessBackend] = {}

    def get(self, workers: int, kind: str) -> Backend:
        if workers <= 1:
            return _SERIAL
        key = (kind, workers)
        backend = self._pools.get(key)
        if backend is None:
            backend = (
                ProcessBackend(workers)
                if kind == "process"
                else ThreadBackend(workers)
            )
            self._pools[key] = backend
        return backend

    def shutdown(self) -> None:
        pools = list(self._pools.values())
        self._pools.clear()
        for pool in pools:
            pool.shutdown()


_REGISTRY = _BackendRegistry()


def get_backend(workers: int, kind: str = "thread") -> Backend:
    """The execution backend for a worker count; pools are reused."""
    return _REGISTRY.get(workers, kind)


def shutdown_backends() -> None:
    """Shut down every pooled backend (threads joined, children reaped).

    Wired to ``Database.close()`` and ``atexit`` so serving processes do
    not leak ``repro-worker`` threads; the next parallel statement simply
    re-creates its pool through :func:`get_backend`.
    """
    _REGISTRY.shutdown()


atexit.register(shutdown_backends)


# ---------------------------------------------------------------------------
# picklable morsel payloads (ProcessBackend worker functions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanMorsel:
    """A self-contained scan task a worker process can run from a pickle.

    Pages are materialized driver-side from the scan snapshot (the same
    counter-free page-store lookup thread workers perform); SARGs arrive
    value-bound — probe and correlation values were already evaluated on
    the driving thread, which is what the drivers' subquery-free
    eligibility guarantees is pure — and the matcher is recompiled in
    the worker via :func:`~repro.rss.sargs.compile_matcher`, the exact
    factory the serial scan open uses.
    """

    pages: tuple[tuple[int, object], ...]
    relation_id: int
    datatypes: tuple[DataType, ...]
    sargs: ConjunctiveSargs | None
    #: When set, workers build bare output tuples via ``itemgetter`` —
    #: the all-plain-columns fast path; ``None`` returns raw
    #: ``(tid, values)`` chunks for the driver's compiled closures.
    out_positions: tuple[int, ...] | None


def run_scan_morsel(morsel: ScanMorsel) -> tuple[CostCounters, list[list]]:
    """One process-pool task: decode, SARG-match, and chunk a morsel.

    Mirrors the thread backend's ``_scan_partition`` exactly: private
    counters, no buffer traffic (the driving thread replays fetches),
    and matched rows chunked in the serial scan's page-aligned batch
    quanta so RSI charges land identically.
    """
    counters = CostCounters()
    count_rsi = counters.count_rsi_call
    decode = DecodePlan(list(morsel.datatypes)).decode
    matcher = compile_matcher(morsel.sargs, list(morsel.datatypes))
    out_positions = morsel.out_positions
    getter = None
    if out_positions is not None:
        if len(out_positions) == 1:
            only = itemgetter(out_positions[0])

            def single(values: tuple, _get=only) -> tuple:
                return (_get(values),)

            getter = single
        else:
            getter = itemgetter(*out_positions)
    relation_id = morsel.relation_id
    pages: list[list] = []
    for page_id, page in morsel.pages:
        rows = decode_page_rows(page_id, page, relation_id, decode)
        if matcher is not None:
            rows = [item for item in rows if matcher(item[1])]
        chunks: list = []
        for start in range(0, len(rows), DEFAULT_BATCH_SIZE):
            chunk = rows[start : start + DEFAULT_BATCH_SIZE]
            count_rsi(len(chunk))
            if getter is not None:
                chunks.append([getter(values) for __, values in chunk])
            else:
                chunks.append(chunk)
        pages.append(chunks)
    return counters, pages


@dataclass(frozen=True)
class AggCallSpec:
    """A picklable stand-in for ``ast.FuncCall`` inside ``_AggState``.

    ``argument`` carries the argument's column position (``None`` marks
    ``COUNT(*)``) — the accumulator only ever asks ``argument is None``,
    ``name``, and ``distinct``.
    """

    name: str
    argument: int | None
    distinct: bool


@dataclass(frozen=True)
class AggMorsel:
    """A partial-aggregation task a worker process can run from a pickle."""

    pages: tuple[tuple[int, object], ...]
    relation_id: int
    datatypes: tuple[DataType, ...]
    sargs: ConjunctiveSargs | None
    key_positions: tuple[int, ...]
    #: Aligned with ``calls``; ``None`` marks ``COUNT(*)``.
    arg_positions: tuple[int | None, ...]
    calls: tuple[AggCallSpec, ...]


def run_agg_morsel(
    morsel: AggMorsel,
) -> tuple[CostCounters, int, list[tuple]]:
    """One process-pool task: fold a morsel into per-group partial states.

    Returns ``(counters, page_count, runs)`` where ``runs`` lists
    ``(key, states, tid, values)`` in first-occurrence order with
    streaming (adjacency) group semantics — the gather merges a run into
    its predecessor only when adjacent morsels share a boundary key, so
    the reassembled group sequence is exactly the serial scan-order
    fold's.
    """
    counters = CostCounters()
    count_rsi = counters.count_rsi_call
    decode = DecodePlan(list(morsel.datatypes)).decode
    matcher = compile_matcher(morsel.sargs, list(morsel.datatypes))
    relation_id = morsel.relation_id
    key_positions = morsel.key_positions
    arg_positions = morsel.arg_positions
    calls = morsel.calls
    runs: list[tuple] = []
    current_key: object = None
    states: list[_AggState] = []
    saw_rows = False
    for page_id, page in morsel.pages:
        rows = decode_page_rows(page_id, page, relation_id, decode)
        if matcher is not None:
            rows = [item for item in rows if matcher(item[1])]
        for start in range(0, len(rows), DEFAULT_BATCH_SIZE):
            chunk = rows[start : start + DEFAULT_BATCH_SIZE]
            count_rsi(len(chunk))
            for tid, values in chunk:
                key = tuple([values[p] for p in key_positions])
                if not saw_rows or key != current_key:
                    current_key = key
                    states = [_AggState(call) for call in calls]
                    runs.append((key, states, tid, values))
                saw_rows = True
                for state, position in zip(states, arg_positions):
                    state.add(None if position is None else values[position])
    return counters, len(morsel.pages), runs
