"""Group commit: batching concurrent writers into one page-table flip.

Every write statement is wrapped in a ticket and queued.  Whichever
submitter first wins the commit lock becomes the **leader**: it drains the
queue, executes each queued statement as a savepoint-bracketed unit inside
one storage batch, and lands all survivors with a single fsync+rename
page-table flip (:meth:`~repro.rss.storage.StorageEngine.commit_batch`) —
the dominant durability cost is paid once per batch instead of once per
statement.  Followers wait on their ticket with bounded exponential
backoff; a follower whose ticket is still pending at the timeout withdraws
it and raises :class:`~repro.errors.DatabaseBusyError` (nothing ran), while
a claimed ticket is always carried to an outcome by its leader — commit,
per-statement rollback, or batch-wide :class:`~repro.errors.CommitAbortedError` —
so no session ever hangs or silently loses a result.

Outcome rules:

- A statement that raises rolls back to its savepoint alone; its peers
  commit.  The statement's own exception is its outcome.
- A failed batch commit rolls everything back.  A solo statement receives
  the original commit error (exactly the classic ``atomic()`` semantics);
  a multi-statement batch receives :class:`CommitAbortedError` per
  participant with the underlying failure as ``__cause__``.
- A :class:`~repro.errors.SimulatedCrash` poisons the engine: every
  statement of the batch — executed or not — fails with the crash, and
  recovery happens by re-opening the disk snapshot it carries.
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic
from typing import Callable

from ..errors import CommitAbortedError, DatabaseBusyError, SimulatedCrash
from ..rss.faults import get_injector, register_point
from .locks import (
    DEFAULT_COMMIT_TIMEOUT,
    DEFAULT_INITIAL_BACKOFF,
    DEFAULT_MAX_BACKOFF,
    CommitLock,
)

FP_COMMIT_LOCK = register_point(
    "commit.lock", "a write statement is about to queue for the commit lock"
)


class _Ticket:
    """One queued write statement and its eventual outcome."""

    __slots__ = ("fn", "done", "_lock", "pending", "result", "error", "commit_version")

    def __init__(self, fn: Callable[[], object]):
        self.fn = fn
        #: Set once the outcome fields are final; waiters block on this.
        self.done = threading.Event()
        self._lock = threading.Lock()
        #: Still in the queue — withdrawable on timeout.  Flipped to False
        #: (under the coordinator's queue lock) when a leader claims it.
        self.pending = True
        self.result: object = None
        self.error: BaseException | None = None
        self.commit_version: int | None = None

    def succeed(self, result: object, version: int) -> None:
        with self._lock:
            self.result = result
            self.commit_version = version
        self.done.set()

    def fail(self, error: BaseException) -> None:
        with self._lock:
            self.error = error
        self.done.set()


class GroupCommitCoordinator:
    """Serializes writers through one commit lock and batches their flips."""

    def __init__(
        self,
        engine,
        timeout: float = DEFAULT_COMMIT_TIMEOUT,
        group_commit: bool = True,
        initial_backoff: float = DEFAULT_INITIAL_BACKOFF,
        max_backoff: float = DEFAULT_MAX_BACKOFF,
    ):
        self._engine = engine
        self._commit_lock = CommitLock(timeout, initial_backoff, max_backoff)
        self._queue_lock = threading.Lock()
        self._queue: deque[_Ticket] = deque()  # concurrency: lock-guarded
        #: ``False`` degrades every batch to one-commit-per-statement (for
        #: benchmarking the amortization, and for bisecting failures).
        self.group_commit = group_commit
        self._stats_lock = threading.Lock()
        self.batches_committed = 0  # concurrency: lock-guarded
        self.statements_committed = 0  # concurrency: lock-guarded
        self.largest_batch = 0  # concurrency: lock-guarded

    @property
    def timeout(self) -> float:
        return self._commit_lock.timeout

    def submit(self, fn: Callable[[], object]) -> tuple[object, int | None]:
        """Run one write statement through the commit pipeline.

        Returns ``(result, commit_version)`` on success.  Raises the
        statement's own error on per-statement rollback,
        :class:`DatabaseBusyError` when the commit lock stayed contended
        past the timeout (the statement never ran), or
        :class:`CommitAbortedError` when a multi-statement batch failed to
        land.
        """
        get_injector().trip(FP_COMMIT_LOCK)
        ticket = _Ticket(fn)
        with self._queue_lock:
            self._queue.append(ticket)
        deadline = monotonic() + self._commit_lock.timeout
        delays = self._commit_lock.delays()
        while not ticket.done.is_set():
            if self._commit_lock.try_acquire():
                try:
                    self._drain()
                finally:
                    self._commit_lock.release()
                if not ticket.done.is_set():
                    # A previous leader claimed the ticket before our drain
                    # saw it; its outcome is guaranteed, so wait it out.
                    ticket.done.wait()
                break
            remaining = deadline - monotonic()
            if remaining <= 0.0:
                if self._withdraw(ticket):
                    raise DatabaseBusyError(self._commit_lock.timeout)
                ticket.done.wait()  # claimed: the leader owes us an outcome
                break
            ticket.done.wait(min(next(delays), remaining))
        if ticket.error is not None:
            raise ticket.error
        return ticket.result, ticket.commit_version

    def _withdraw(self, ticket: _Ticket) -> bool:
        """Remove a still-pending ticket from the queue; False if claimed."""
        with self._queue_lock:
            if ticket.pending:
                self._queue.remove(ticket)
                ticket.pending = False
                return True
            return False

    def _drain(self) -> None:
        """Leader duty: claim everything queued right now and run it."""
        with self._queue_lock:
            batch = list(self._queue)
            self._queue.clear()
            for ticket in batch:
                ticket.pending = False
        if not batch:
            return
        if self.group_commit:
            self._run_batch(batch)
        else:
            for ticket in batch:
                self._run_batch([ticket])

    def _run_batch(self, tickets: list[_Ticket]) -> None:
        engine = self._engine
        try:
            engine.begin_batch()
        except BaseException as error:
            for ticket in tickets:
                ticket.fail(error)
            return
        survivors: list[tuple[_Ticket, object]] = []
        crash: SimulatedCrash | None = None
        for ticket in tickets:
            if crash is not None:
                ticket.fail(crash)
                continue
            try:
                with engine.statement():
                    result = ticket.fn()
            except SimulatedCrash as error:
                crash = error
                ticket.fail(error)
            except BaseException as error:
                ticket.fail(error)  # rolled back to its savepoint alone
            else:
                survivors.append((ticket, result))
        if crash is not None:
            # The "process" is gone mid-batch: nothing of it is durable,
            # and every participant learns the crash.
            for ticket, __ in survivors:
                ticket.fail(crash)
            return
        if not survivors:
            engine.abort_batch()
            return
        try:
            version = engine.commit_batch()
        except SimulatedCrash as error:
            for ticket, __ in survivors:
                ticket.fail(error)
            return
        except BaseException as error:
            if len(tickets) == 1:
                # Solo statement: classic atomic() semantics — rolled back,
                # original exception.
                survivors[0][0].fail(error)
            else:
                for ticket, __ in survivors:
                    aborted = CommitAbortedError(len(survivors))
                    aborted.__cause__ = error
                    ticket.fail(aborted)
            return
        with self._stats_lock:
            self.batches_committed += 1
            self.statements_committed += len(survivors)
            self.largest_batch = max(self.largest_batch, len(survivors))
        for ticket, result in survivors:
            ticket.succeed(result, version)
