"""Unit tests for expression evaluation and three-valued logic."""

import pytest

from repro.datatypes import INTEGER, varchar
from repro.engine.evaluator import EvalEnv, evaluate, predicate_holds
from repro.engine.rows import AGGREGATE_ALIAS, Row
from repro.errors import ExecutionError
from repro.optimizer.bound import AggregateRef, BoundColumn
from repro.rss.sargs import CompareOp
from repro.sql import ast


def column(alias="T", position=0, name="A", datatype=INTEGER, block=1):
    return BoundColumn(alias, position, name, "T", datatype, block)


def env_with(values, alias="T", outer=None):
    return EvalEnv(row=Row(values={alias: values}), runtime=None, outer=outer)


def lit(value):
    return ast.Literal(value)


class TestValues:
    def test_literal(self):
        assert evaluate(lit(5), env_with((1,))) == 5

    def test_column_lookup(self):
        assert evaluate(column(position=1), env_with((1, 42))) == 42

    def test_outer_chain_lookup(self):
        outer = env_with((7,), alias="X")
        inner = EvalEnv(row=Row(values={"T": (1,)}), runtime=None, outer=outer)
        assert evaluate(column(alias="X"), inner) == 7

    def test_missing_alias_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(column(alias="NOPE"), env_with((1,)))

    def test_arithmetic(self):
        expr = ast.BinaryOp("+", lit(2), ast.BinaryOp("*", lit(3), lit(4)))
        assert evaluate(expr, env_with(())) == 14

    def test_arithmetic_null_propagates(self):
        expr = ast.BinaryOp("+", lit(None), lit(1))
        assert evaluate(expr, env_with(())) is None

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.BinaryOp("/", lit(1), lit(0)), env_with(()))

    def test_negate(self):
        assert evaluate(ast.Negate(lit(5)), env_with(())) == -5

    def test_aggregate_ref(self):
        env = EvalEnv(
            row=Row(values={AGGREGATE_ALIAS: (10, 20)}), runtime=None
        )
        assert evaluate(AggregateRef(1), env) == 20


class TestThreeValuedLogic:
    def test_comparison_with_null_is_unknown(self):
        expr = ast.Comparison(CompareOp.EQ, lit(None), lit(1))
        assert evaluate(expr, env_with(())) is None

    def test_not_unknown_is_unknown(self):
        inner = ast.Comparison(CompareOp.EQ, lit(None), lit(1))
        assert evaluate(ast.Not(inner), env_with(())) is None

    def test_and_false_dominates_unknown(self):
        unknown = ast.Comparison(CompareOp.EQ, lit(None), lit(1))
        false = ast.Comparison(CompareOp.EQ, lit(1), lit(2))
        assert evaluate(ast.And((unknown, false)), env_with(())) is False

    def test_and_true_and_unknown_is_unknown(self):
        unknown = ast.Comparison(CompareOp.EQ, lit(None), lit(1))
        true = ast.Comparison(CompareOp.EQ, lit(1), lit(1))
        assert evaluate(ast.And((true, unknown)), env_with(())) is None

    def test_or_true_dominates_unknown(self):
        unknown = ast.Comparison(CompareOp.EQ, lit(None), lit(1))
        true = ast.Comparison(CompareOp.EQ, lit(1), lit(1))
        assert evaluate(ast.Or((unknown, true)), env_with(())) is True

    def test_or_false_and_unknown_is_unknown(self):
        unknown = ast.Comparison(CompareOp.EQ, lit(None), lit(1))
        false = ast.Comparison(CompareOp.EQ, lit(1), lit(2))
        assert evaluate(ast.Or((false, unknown)), env_with(())) is None

    def test_predicate_holds_requires_true(self):
        unknown = ast.Comparison(CompareOp.EQ, lit(None), lit(1))
        assert predicate_holds(unknown, env_with(())) is False


class TestPredicates:
    def test_between(self):
        expr = ast.Between(lit(5), lit(1), lit(10))
        assert evaluate(expr, env_with(())) is True

    def test_between_null_operand(self):
        expr = ast.Between(lit(None), lit(1), lit(10))
        assert evaluate(expr, env_with(())) is None

    def test_in_list_hit(self):
        expr = ast.InList(lit(2), (lit(1), lit(2)))
        assert evaluate(expr, env_with(())) is True

    def test_in_list_miss_with_null_is_unknown(self):
        expr = ast.InList(lit(3), (lit(1), lit(None)))
        assert evaluate(expr, env_with(())) is None

    def test_in_list_null_operand(self):
        expr = ast.InList(lit(None), (lit(1),))
        assert evaluate(expr, env_with(())) is None

    def test_is_null(self):
        assert evaluate(ast.IsNull(lit(None)), env_with(())) is True
        assert evaluate(ast.IsNull(lit(1)), env_with(())) is False
        assert evaluate(ast.IsNull(lit(1), negated=True), env_with(())) is True

    @pytest.mark.parametrize(
        "pattern,value,expected",
        [
            ("A%", "ABC", True),
            ("A%", "BAC", False),
            ("%C", "ABC", True),
            ("A_C", "ABC", True),
            ("A_C", "ABBC", False),
            ("%", "", True),
            ("A.C", "ABC", False),  # dot is literal, not regex
            ("100%", "100%", True),
        ],
    )
    def test_like(self, pattern, value, expected):
        expr = ast.Like(lit(value), pattern)
        assert evaluate(expr, env_with(())) is expected

    def test_like_null_is_unknown(self):
        assert evaluate(ast.Like(lit(None), "x"), env_with(())) is None

    def test_not_like(self):
        expr = ast.Like(lit("ABC"), "A%", negated=True)
        assert evaluate(expr, env_with(())) is False
