"""The "disk": an allocator and owner of all pages in the system.

Data pages are :class:`~repro.rss.page.Page` objects backed by real bytes.
B-tree node pages are structured objects (see :mod:`repro.rss.btree`) that
occupy the same page-id space, so the buffer pool accounts for index page
fetches and data page fetches uniformly — exactly the two page populations
the paper's cost formulas distinguish (``NINDX`` vs ``TCARD``).

The store is also the unit of **statement atomicity**.  Between
:meth:`PageStore.begin` and :meth:`commit`/:meth:`rollback`, the first
mutation of any committed page swaps a private writable clone into the live
map and keeps the pristine original as the undo image — copy-on-write *for
the writer*, System R shadow-version style.  Committed page objects are
therefore never mutated in place, which is what lets concurrent snapshot
readers (the serving layer) keep reading them without locks while a writer
prepares the next version.  Rollback reinstalls the originals and discards
pages allocated inside the transaction, so a statement that fails half-way
leaves no trace.  When a :class:`~repro.rss.disk.DiskManager` is attached,
commit serializes every page the transaction touched and flips the durable
page table atomically; without one, commit is free — the fault-free
in-memory path does exactly the same page operations it always did.

**Savepoints** layer the undo state per statement: a group-commit batch
opens one transaction, brackets each queued statement with
:meth:`savepoint`/:meth:`rollback_to`, and flips all surviving statements
in a single commit.

**Versions** count committed transactions.  While any reader holds a pin
(:meth:`pin`), each commit records the pre-images of the pages it replaced
or freed, so :meth:`resolve` can serve any page *as of* the pinned version:
first a matching pre-image from a later commit, then the in-flight writer's
undo images, then the live map.  History entries are garbage-collected as
pins release.

Pages allocated with ``temp=True`` (sort runs, temporary lists) are scratch:
they participate in neither undo nor durability.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from ..errors import StorageError
from .faults import get_injector, register_point
from .page import Page

if TYPE_CHECKING:
    from .disk import DiskManager

FP_PAGE_ALLOC = register_point("page.alloc", "allocating a fresh page id")
FP_PAGE_MUTATE = register_point(
    "page.mutate", "first in-transaction mutation of a page (shadow copy)"
)


class _TxFrame:
    """Undo state for one savepoint level of the open transaction."""

    __slots__ = ("undo", "allocated", "freed", "swapped")

    def __init__(self) -> None:
        #: page id -> pre-image object as of this frame's savepoint.  For
        #: the frame that first touched a committed page this is the
        #: pristine committed original (see ``swapped``); for later frames
        #: it is a savepoint copy of the writable clone.
        self.undo: dict[int, object] = {}
        #: page ids allocated inside this frame.
        self.allocated: set[int] = set()
        #: page id -> object at free time, for pages freed in this frame.
        self.freed: dict[int, object] = {}
        #: page ids whose committed original was replaced by a writable
        #: clone *in this frame* — for those, ``undo`` holds the original.
        self.swapped: set[int] = set()


class PageStore:
    """Allocates page ids and owns page contents.

    All reads must go through a :class:`~repro.rss.buffer.BufferPool`, which
    is what makes page fetches countable; the store itself never counts.
    """

    def __init__(self, disk: "DiskManager | None" = None):
        #: Guards the live page map, the allocator watermark, the undo
        #: frames, and the version/pin/history bookkeeping below, so
        #: snapshot readers and temp-page allocation from worker threads
        #: stay consistent with the single in-flight writer.
        self._lock = threading.RLock()
        self._pages: dict[int, object] = {}  # concurrency: lock-guarded
        self._next_id = 1  # concurrency: lock-guarded
        self._temp_ids: set[int] = set()  # concurrency: lock-guarded
        self.disk = disk
        if disk is not None:
            self._next_id = max(self._next_id, disk.next_page_id)
        self._in_tx = False
        self._frames: list[_TxFrame] = []  # concurrency: lock-guarded
        #: Page ids swapped to writable clones since ``begin`` (any frame).
        self._writable: set[int] = set()  # concurrency: lock-guarded
        #: Page ids allocated since ``begin`` (any frame).
        self._allocated_ids: set[int] = set()  # concurrency: lock-guarded
        #: Committed-transaction counter; bumped once per commit.
        self.version = 0  # concurrency: lock-guarded
        #: version -> number of readers pinned at it.
        self._pins: dict[int, int] = {}  # concurrency: lock-guarded
        #: (commit version, page id -> pre-image) entries, oldest first,
        #: retained only while a pin older than the entry exists.
        self._history: list[tuple[int, dict[int, object]]] = []  # concurrency: lock-guarded

    # -- allocation ---------------------------------------------------------

    def allocate_data_page(self, temp: bool = False) -> Page:
        """Create and register a fresh empty data page.

        ``temp`` marks scratch pages (temporary lists, sort runs) that are
        excluded from transactions and never written to the backing file.
        """
        get_injector().trip(FP_PAGE_ALLOC)
        with self._lock:
            page = Page(self._next_id)
            self._register(page.page_id, page, temp)
        return page

    def allocate_node_page(self, node: object) -> int:
        """Register a B-tree node as a page; returns its page id."""
        get_injector().trip(FP_PAGE_ALLOC)
        with self._lock:
            page_id = self._next_id
            self._register(page_id, node, temp=False)
        return page_id

    def _register(self, page_id: int, obj: object, temp: bool) -> None:
        with self._lock:
            self._pages[page_id] = obj
            self._next_id = page_id + 1
            if temp:
                self._temp_ids.add(page_id)
            elif self._in_tx:
                self._frames[-1].allocated.add(page_id)
                self._allocated_ids.add(page_id)

    # -- access -------------------------------------------------------------

    def get(self, page_id: int) -> object:
        """The page object for an id; raises on unknown pages."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"no such page {page_id}") from None

    def free(self, page_id: int) -> None:
        """Release a page id (idempotent)."""
        with self._lock:
            obj = self._pages.pop(page_id, None)
            temp = page_id in self._temp_ids
            self._temp_ids.discard(page_id)
            if obj is not None and self._in_tx and not temp:
                self._frames[-1].freed.setdefault(page_id, obj)

    def is_temp(self, page_id: int) -> bool:
        """Whether a page id is scratch (excluded from durability)."""
        return page_id in self._temp_ids

    def page_ids(self) -> list[int]:
        """Every allocated page id, ascending (for invariant checks)."""
        return sorted(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    # -- statement transactions ---------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """Whether a statement transaction is open."""
        return self._in_tx

    def begin(self) -> None:
        """Open a transaction (no copies are taken up front)."""
        if self._in_tx:
            raise StorageError("statement transaction already open")
        with self._lock:
            self._in_tx = True
            self._frames = [_TxFrame()]
            self._writable = set()
            self._allocated_ids = set()

    def savepoint(self) -> int:
        """Layer a new undo frame; returns a token for :meth:`rollback_to`.

        Group commit brackets each batched statement with a savepoint so a
        failing statement rolls back alone while its batch peers commit.
        """
        if not self._in_tx:
            raise StorageError("no open transaction to savepoint")
        with self._lock:
            self._frames.append(_TxFrame())
            return len(self._frames) - 1

    def rollback_to(self, token: int, buffer: object = None) -> None:
        """Undo every effect since the matching :meth:`savepoint`."""
        if not self._in_tx:
            raise StorageError("no open transaction to roll back")
        if not 1 <= token < len(self._frames) + 1:
            raise StorageError(f"bad savepoint token {token}")
        with self._lock:
            while len(self._frames) > token:
                self._pop_frame(buffer)

    def rollback(self, buffer: object = None) -> None:
        """Discard every effect since :meth:`begin`.

        Pages allocated inside the transaction disappear (and are dropped
        from ``buffer`` when one is given), freed pages reappear, and
        mutated pages revert to their pristine committed originals.
        """
        if not self._in_tx:
            raise StorageError("no statement transaction to roll back")
        with self._lock:
            while self._frames:
                self._pop_frame(buffer)
            self._end_tx()

    def _pop_frame(self, buffer: object = None) -> None:
        with self._lock:
            frame = self._frames.pop()
            for page_id in frame.allocated:
                self._pages.pop(page_id, None)
                self._temp_ids.discard(page_id)
                if buffer is not None:
                    buffer.invalidate(page_id)
                self._allocated_ids.discard(page_id)
            for page_id, obj in frame.freed.items():
                if page_id not in frame.allocated:
                    self._pages[page_id] = obj
            for page_id, pre_image in frame.undo.items():
                if page_id not in frame.allocated:
                    self._pages[page_id] = pre_image
            self._writable -= frame.swapped

    def prepare_write(self, page_id: int) -> object:
        """Declare an imminent mutation of a page; returns the object to
        mutate.

        Inside a transaction, the first mutation of each committed page
        swaps a writable clone into the live map and keeps the pristine
        original as the undo image, so the committed object is never
        touched — snapshot readers holding it stay consistent without
        locks.  Callers must rebind to the returned object.  Outside a
        transaction (or for temp pages) this returns the live object
        unchanged, so mutators call it unconditionally.
        """
        obj = self._pages.get(page_id)
        if obj is None:
            return None
        if not self._in_tx or page_id in self._temp_ids:
            return obj
        frame = self._frames[-1]
        if page_id in frame.undo:
            return obj
        # One trip per page per frame — for the single-frame transactions of
        # the classic statement path this is exactly the historical "first
        # mutation of each page per transaction" sequence.
        get_injector().trip(FP_PAGE_MUTATE)
        clone = getattr(obj, "clone", None)
        if clone is None:
            raise StorageError(
                f"page {page_id} object {type(obj).__name__} is not clonable"
            )
        with self._lock:
            if page_id in self._writable or page_id in self._allocated_ids:
                # Already invisible to snapshot readers (a clone, or born in
                # this transaction): record a savepoint copy and keep
                # mutating the live object in place.
                frame.undo[page_id] = clone()
                return obj
            # First touch of a committed page: the original becomes the
            # undo/snapshot image, the clone becomes the writer's page.
            writable = clone()
            frame.undo[page_id] = obj
            frame.swapped.add(page_id)
            self._writable.add(page_id)
            self._pages[page_id] = writable
            return writable

    def commit(
        self,
        meta_blob: bytes | None = None,
        publish: Callable[[], None] | None = None,
    ) -> int:
        """Make every effect since :meth:`begin` final; returns the new
        version.

        With a backing file attached, every touched non-temp page is
        serialized and written copy-on-write, then the page table flips
        atomically; ``meta_blob`` (the metadata page payload) rides in the
        same commit.  On failure the transaction stays open so the caller
        can roll back — the durable state is untouched either way.

        ``publish`` runs under the store lock in the same breath as the
        version bump, so the caller can expose commit-dependent state
        (the engine's frozen metadata snapshot) atomically with it.  When
        readers are pinned, the pre-images of replaced and freed pages are
        appended to the version history before the bump becomes visible.
        """
        if not self._in_tx:
            raise StorageError("no statement transaction to commit")
        undo_all: dict[int, object] = {}
        freed_all: dict[int, object] = {}
        touched: set[int] = set()
        for frame in self._frames:
            for page_id, pre_image in frame.undo.items():
                undo_all.setdefault(page_id, pre_image)
            for page_id, obj in frame.freed.items():
                freed_all.setdefault(page_id, obj)
            touched.update(frame.undo)
            touched.update(frame.allocated)
        if self.disk is not None:
            from .recovery import META_PAGE_ID, serialize_page

            dirty: dict[int, bytes] = {}
            for page_id in sorted(touched):
                obj = self._pages.get(page_id)
                if obj is None or page_id in self._temp_ids:
                    continue
                dirty[page_id] = serialize_page(obj)
            if meta_blob is not None:
                dirty[META_PAGE_ID] = meta_blob
            freed = [
                page_id
                for page_id in freed_all
                if page_id not in self._pages
            ]
            self.disk.commit(dirty, freed, self._next_id)
        with self._lock:
            self.version += 1
            if self._pins:
                pre_images: dict[int, object] = {}
                for page_id, pre_image in undo_all.items():
                    if page_id not in self._allocated_ids:
                        pre_images[page_id] = pre_image
                for page_id, obj in freed_all.items():
                    if page_id not in self._allocated_ids:
                        pre_images.setdefault(page_id, obj)
                self._history.append((self.version, pre_images))
            if publish is not None:
                publish()
            self._end_tx()
            return self.version

    def _end_tx(self) -> None:
        with self._lock:
            self._in_tx = False
            self._frames = []
            self._writable = set()
            self._allocated_ids = set()

    # -- snapshot reads -------------------------------------------------------

    def pin(self) -> int:
        """Register a reader at the current version; returns that version."""
        with self._lock:
            version = self.version
            self._pins[version] = self._pins.get(version, 0) + 1
            return version

    def pin_snapshot(self, read: Callable[[], object]) -> tuple[int, object]:
        """Pin the current version and read commit-published state in the
        same breath.

        ``read`` runs under the store lock, so the pair it returns with the
        version can never straddle a commit — the caller's metadata always
        describes exactly the pinned version.
        """
        with self._lock:
            return self.pin(), read()

    def unpin(self, version: int) -> None:
        """Release a reader pin and drop history no pin can reach."""
        with self._lock:
            count = self._pins.get(version, 0) - 1
            if count > 0:
                self._pins[version] = count
            else:
                self._pins.pop(version, None)
            if self._history:
                if not self._pins:
                    self._history = []
                else:
                    floor = min(self._pins)
                    self._history = [
                        entry for entry in self._history if entry[0] > floor
                    ]

    def resolve(self, page_id: int, version: int) -> object:
        """The page object as of a pinned ``version``.

        Resolution order: the oldest committed pre-image newer than the
        pin, then the in-flight writer's pristine undo images, then the
        live map.  Committed objects are immutable (writers mutate private
        clones), so whatever this returns is safe to read without the
        lock.
        """
        with self._lock:
            for entry_version, pre_images in self._history:
                if entry_version > version and page_id in pre_images:
                    return pre_images[page_id]
            for frame in self._frames:
                if page_id in frame.swapped:
                    return frame.undo[page_id]
            for frame in self._frames:
                obj = frame.freed.get(page_id)
                if obj is not None and page_id not in self._allocated_ids:
                    return obj
            try:
                return self._pages[page_id]
            except KeyError:
                raise StorageError(
                    f"no such page {page_id} at version {version}"
                ) from None

    # -- recovery ------------------------------------------------------------

    def adopt(self, pages: dict[int, object], next_page_id: int) -> None:
        """Install recovered page contents (only valid on an empty store)."""
        if self._pages:
            raise StorageError("cannot adopt pages into a non-empty store")
        with self._lock:
            self._pages = dict(pages)
            self._next_id = max(next_page_id, max(self._pages, default=0) + 1)
