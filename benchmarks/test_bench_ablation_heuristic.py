"""A3 — ablation: the deferred-Cartesian-product join-order heuristic.

"A heuristic is used to reduce the join order permutations which are
considered ... all joins requiring Cartesian products are performed as late
in the join sequence as possible."

The bench compares DP search effort (subsets expanded, plans considered,
entries stored) and final plan cost with the heuristic on and off, for
chain joins of growing size.
"""

import random

from repro.optimizer.binder import Binder
from repro.sql import parse_statement
from repro.workloads import build_database, chain_join_query, random_chain_spec

SIZES = [3, 4, 5, 6, 7]


def test_join_order_heuristic(report, benchmark):
    rng = random.Random(21)
    specs = random_chain_spec(max(SIZES), rng, min_rows=100, max_rows=300)
    db = build_database(specs, seed=21)

    rows = []
    overhead_ratios = []
    for size in SIZES:
        sql = chain_join_query(specs[:size])
        results = {}
        for heuristic in (True, False):
            db.use_heuristic = heuristic
            optimizer = db.optimizer()
            block = Binder(db.catalog).bind(parse_statement(sql))

            def run(optimizer=optimizer, block=block):
                return optimizer.run_join_search(block)[0]

            if size == SIZES[0] and heuristic:
                search = benchmark.pedantic(run, rounds=3, iterations=1)
            else:
                search = run()
            planned = optimizer.plan_block(
                Binder(db.catalog).bind(parse_statement(sql))
            )
            results[heuristic] = (search, planned)
        db.use_heuristic = True

        on_search, on_plan = results[True]
        off_search, off_plan = results[False]
        overhead_ratios.append(
            off_search.stats.plans_considered
            / max(1, on_search.stats.plans_considered)
        )
        rows.append(
            [
                size,
                on_search.stats.plans_considered,
                off_search.stats.plans_considered,
                on_search.total_entries(),
                off_search.total_entries(),
                on_plan.estimated_total(),
                off_plan.estimated_total(),
            ]
        )

    report.line("A3 — join-order heuristic: ON vs OFF (connected chain joins)")
    report.table(
        [
            "tables",
            "plans ON",
            "plans OFF",
            "stored ON",
            "stored OFF",
            "cost ON",
            "cost OFF",
        ],
        rows,
        widths=[8, 11, 11, 11, 11, 12, 12],
    )
    report.line()
    report.line(
        f"search-effort inflation without the heuristic: "
        f"{overhead_ratios[0]:.1f}x at {SIZES[0]} tables -> "
        f"{overhead_ratios[-1]:.1f}x at {SIZES[-1]} tables"
    )
    report.line(
        "On connected queries the heuristic loses nothing: the chosen cost"
    )
    report.line(
        "matches while the searched space shrinks (its known risk — missing"
    )
    report.line(
        "an estimated-cheaper early-Cartesian plan — needs disconnected "
        "predicates)."
    )

    for row in rows:
        # Heuristic always searches less...
        assert row[1] <= row[2]
        assert row[3] <= row[4]
        # ...and on connected chains finds an equally cheap plan.
        assert row[5] <= row[6] * 1.0001 + 1e-9
    # The saving grows with the number of relations.
    assert overhead_ratios[-1] > overhead_ratios[0]
