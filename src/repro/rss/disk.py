"""The durable page layer: checksummed frames behind a shadow page table.

This is the System R recovery design in miniature (Section 3 of the
paper: the RSS kept every RSI call atomic against failures with shadow
pages).  Two files back a database at ``path``:

- ``<path>`` — the *frame file*: 4 KiB frames addressed by index.  A
  logical page version occupies one or more consecutive frames.
- ``<path>.pt`` — the *page table*: the committed mapping
  ``page id -> (first frame, frame count, payload length, CRC-32)``
  plus the allocator high-water marks, serialized as JSON with its own
  checksum.

Writes are **copy-on-write**: a commit writes the new version of every
dirty page into free frames (never overwriting the committed version),
fsyncs the frame file, then atomically *flips* the page table —
write-new-then-fsync-then-rename — so the committed state switches from
old to new in one rename.  A crash at any instant leaves either the old
page table (new frames are unreferenced garbage, reclaimed on open) or
the new one (the commit happened); never a mix.

Torn writes are caught by the per-page CRC-32 recorded in the page
table: :meth:`DiskManager.read_page` (and the full verify pass on open)
raises :class:`~repro.errors.TornPageError` naming the page id when the
frame bytes do not hash to the committed checksum.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterable

from ..errors import RecoveryError, TornPageError
from .faults import get_injector, register_point
from .page import PAGE_SIZE

#: Suffix of the page-table file next to the frame file.
PAGE_TABLE_SUFFIX = ".pt"

#: Page-table format version (bump on layout changes).
PAGE_TABLE_VERSION = 1

FP_PAGE_WRITE = register_point(
    "page.write", "writing one page's frames during commit"
)
FP_FSYNC = register_point("fsync", "fsyncing the frame file before the flip")
FP_PAGETABLE_WRITE = register_point(
    "pagetable.write", "writing the shadow page table"
)
FP_PAGETABLE_FLIP = register_point(
    "pagetable.flip", "renaming the shadow page table over the committed one"
)
FP_GROUP_COMMIT_AFTER_FSYNC = register_point(
    "group-commit.after-fsync",
    "frame file durable, page table of the batch not yet written",
)


class _Entry:
    """One committed page version: where it lives and its checksum."""

    __slots__ = ("frame", "frame_count", "length", "crc")

    def __init__(self, frame: int, frame_count: int, length: int, crc: int):
        self.frame = frame
        self.frame_count = frame_count
        self.length = length
        self.crc = crc

    def as_list(self) -> list[int]:
        return [self.frame, self.frame_count, self.length, self.crc]


def _frames_needed(length: int) -> int:
    return max(1, (length + PAGE_SIZE - 1) // PAGE_SIZE)


class DiskManager:
    """Owns the frame file and the committed page table for one database."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.table_path = Path(str(self.path) + PAGE_TABLE_SUFFIX)
        self._entries: dict[int, _Entry] = {}
        self.next_page_id = 1
        self._frame_count = 0
        self._free_frames: set[int] = set()
        fresh = not self.path.exists()
        if fresh:
            self.path.touch()
        self._file = open(self.path, "r+b")
        if not self.table_path.exists():
            if self.path.stat().st_size:
                raise RecoveryError(
                    f"{self.path}: frame file exists but its page table "
                    f"{self.table_path} is missing"
                )
            self._flip_table()  # commit the empty table
        else:
            self._load_table()

    # -- opening ----------------------------------------------------------

    def _load_table(self) -> None:
        try:
            raw = json.loads(self.table_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise RecoveryError(
                f"{self.table_path}: unreadable page table: {error}"
            ) from None
        body = raw.get("body")
        crc = raw.get("crc")
        if body is None or crc != zlib.crc32(
            json.dumps(body, sort_keys=True).encode("utf-8")
        ):
            raise RecoveryError(
                f"{self.table_path}: page table checksum mismatch"
            )
        if body.get("version") != PAGE_TABLE_VERSION:
            raise RecoveryError(
                f"{self.table_path}: unsupported page table version "
                f"{body.get('version')!r}"
            )
        self.next_page_id = body["next_page_id"]
        self._frame_count = body["frame_count"]
        self._entries = {
            int(page_id): _Entry(*fields)
            for page_id, fields in body["pages"].items()
        }
        used: set[int] = set()
        for page_id, entry in self._entries.items():
            frames = range(entry.frame, entry.frame + entry.frame_count)
            if entry.frame < 0 or entry.frame + entry.frame_count > self._frame_count:
                raise RecoveryError(
                    f"page {page_id}: frames {list(frames)} outside the file"
                )
            if used & set(frames):
                raise RecoveryError(
                    f"page {page_id}: frames {list(frames)} double-booked"
                )
            used.update(frames)
        # Frames written by an uncommitted shadow (crash before the flip)
        # are simply unreferenced — reclaiming them *is* crash recovery.
        self._free_frames = set(range(self._frame_count)) - used

    # -- reads ------------------------------------------------------------

    def page_ids(self) -> list[int]:
        """Committed page ids, ascending."""
        return sorted(self._entries)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._entries

    def read_page(self, page_id: int) -> bytes:
        """The committed payload of a page, checksum-verified."""
        try:
            entry = self._entries[page_id]
        except KeyError:
            raise RecoveryError(f"no committed page {page_id}") from None
        self._file.seek(entry.frame * PAGE_SIZE)
        payload = self._file.read(entry.length)
        actual = zlib.crc32(payload)
        if len(payload) != entry.length or actual != entry.crc:
            raise TornPageError(page_id, entry.crc, actual)
        return payload

    def audit(self) -> list[str]:
        """Soundness report: checksums, frame bookkeeping, free list.

        Returns problem descriptions instead of raising, so a checker can
        gather every defect in one pass.
        """
        problems: list[str] = []
        used: set[int] = set()
        for page_id, entry in sorted(self._entries.items()):
            frames = set(range(entry.frame, entry.frame + entry.frame_count))
            if entry.frame < 0 or entry.frame + entry.frame_count > self._frame_count:
                problems.append(f"page {page_id}: frames outside the file")
            if used & frames:
                problems.append(f"page {page_id}: frames double-booked")
            used |= frames
            try:
                self.read_page(page_id)
            except TornPageError as error:
                problems.append(str(error))
        overlap = self._free_frames & used
        if overlap:
            problems.append(
                f"free list overlaps committed frames: {sorted(overlap)}"
            )
        unaccounted = set(range(self._frame_count)) - used - self._free_frames
        if unaccounted:
            problems.append(
                f"frames neither committed nor free: {sorted(unaccounted)}"
            )
        return problems

    # -- commit (shadow write + atomic flip) -------------------------------

    def commit(
        self,
        dirty: dict[int, bytes],
        freed: Iterable[int],
        next_page_id: int,
    ) -> None:
        """Atomically replace pages: all of ``dirty`` lands, or none of it.

        New versions go to free frames (copy-on-write), the frame file is
        fsynced, and the page table is flipped by write-then-fsync-then-
        rename.  On any failure before the flip the committed state is
        untouched and the staged frames are returned to the free list.
        """
        injector = get_injector()
        staged: dict[int, _Entry] = {}
        staged_frames: list[int] = []
        old_frame_count = self._frame_count
        try:
            for page_id, payload in sorted(dirty.items()):
                injector.trip(FP_PAGE_WRITE)
                count = _frames_needed(len(payload))
                frame = self._allocate_frames(count)
                staged_frames.extend(range(frame, frame + count))
                self._file.seek(frame * PAGE_SIZE)
                self._file.write(payload)
                padding = count * PAGE_SIZE - len(payload)
                if padding:
                    self._file.write(b"\0" * padding)
                staged[page_id] = _Entry(
                    frame, count, len(payload), zlib.crc32(payload)
                )
            self._file.flush()
            injector.trip(FP_FSYNC)
            os.fsync(self._file.fileno())
            # The window where a batch's frames are durable but its page
            # table is not: a crash here must lose the *whole* batch.
            injector.trip(FP_GROUP_COMMIT_AFTER_FSYNC)
            new_entries = dict(self._entries)
            for page_id in freed:
                new_entries.pop(page_id, None)
            new_entries.update(staged)
            self.next_page_id = max(self.next_page_id, next_page_id)
            injector.trip(FP_PAGETABLE_WRITE)
            self._flip_table(new_entries)
        except BaseException:
            # The committed table still points at the old versions; the
            # staged frames are garbage and return to the free list.
            self._free_frames.update(staged_frames)
            self._frame_count = max(self._frame_count, old_frame_count)
            raise
        # Flip done: reclaim the frames of superseded and freed versions.
        for page_id, old_entry in list(self._entries.items()):
            new_entry = new_entries.get(page_id)
            if new_entry is not old_entry:
                self._free_frames.update(
                    range(old_entry.frame, old_entry.frame + old_entry.frame_count)
                )
        self._entries = new_entries

    def _allocate_frames(self, count: int) -> int:
        """First frame of a free run of ``count`` consecutive frames."""
        if count == 1 and self._free_frames:
            return self._free_frames.pop()
        if count > 1:
            ordered = sorted(self._free_frames)
            run_start, run_length = None, 0
            for frame in ordered:
                if run_start is not None and frame == run_start + run_length:
                    run_length += 1
                else:
                    run_start, run_length = frame, 1
                if run_length == count:
                    for taken in range(run_start, run_start + count):
                        self._free_frames.discard(taken)
                    return run_start
        start = self._frame_count
        self._frame_count += count
        return start

    def _flip_table(self, entries: dict[int, _Entry] | None = None) -> None:
        if entries is None:
            entries = self._entries
        body = {
            "version": PAGE_TABLE_VERSION,
            "next_page_id": self.next_page_id,
            "frame_count": self._frame_count,
            "pages": {
                str(page_id): entry.as_list()
                for page_id, entry in sorted(entries.items())
            },
        }
        payload = json.dumps(
            {
                "body": body,
                "crc": zlib.crc32(
                    json.dumps(body, sort_keys=True).encode("utf-8")
                ),
            },
            sort_keys=True,
        )
        shadow = Path(str(self.table_path) + ".shadow")
        with open(shadow, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        get_injector().trip(FP_PAGETABLE_FLIP)
        os.replace(shadow, self.table_path)

    # -- crash snapshots ----------------------------------------------------

    def snapshot(self) -> dict[str, bytes]:
        """Byte-for-byte copy of the on-disk state, as a crash would see it.

        The frame file is flushed to the OS first (a crashed process loses
        its user-space buffers but not what the kernel already has), then
        both files are read back.
        """
        if not self._file.closed:
            self._file.flush()
        files: dict[str, bytes] = {"": self.path.read_bytes()}
        if self.table_path.exists():
            files[PAGE_TABLE_SUFFIX] = self.table_path.read_bytes()
        return files

    @staticmethod
    def restore(snapshot: dict[str, bytes], path: str | Path) -> Path:
        """Materialize a crash snapshot at ``path`` for re-opening."""
        path = Path(path)
        for suffix, data in snapshot.items():
            Path(str(path) + suffix).write_bytes(data)
        return path

    def close(self) -> None:
        """Close the frame file handle (committed state stays on disk)."""
        if not self._file.closed:
            self._file.close()
