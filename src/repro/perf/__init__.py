"""Optimizer performance tracking.

The paper's Section 8 argues that access path selection itself is cheap —
"a few thousand instructions" per optimization.  This package keeps that
claim honest for the reproduction: :mod:`repro.perf.bench` is a
micro-benchmark harness (``repro bench``) that times *planning only* over
generated chain / star / clique workloads, records the DP's own search
statistics next to wall-clock, and emits a machine-readable
``BENCH_optimizer.json`` so perf trajectories can be compared across
commits (``repro bench --compare old.json``).
"""

from .bench import (
    BenchResult,
    compare_reports,
    default_workloads,
    load_report,
    run_bench,
)

__all__ = [
    "BenchResult",
    "compare_reports",
    "default_workloads",
    "load_report",
    "run_bench",
]
