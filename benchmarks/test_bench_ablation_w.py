"""A1 — ablation: the CPU weighting factor W.

``COST = PAGE_FETCHES + W * RSI_CALLS``, "W is an adjustable weighting
factor between I/O and CPU".  Sweeping W shows plan choices flipping
between I/O-lean paths (few pages, many RSI calls survive SARGs) and
CPU-lean paths as tuple retrieval gets more expensive relative to a page
fetch.
"""

from repro import Database
from repro.optimizer.explain import plan_summary
from repro.workloads import build_empdept, FIG1_QUERY

W_VALUES = [0.0, 1 / 100, 1 / 30, 1 / 10, 1 / 3, 1.0, 3.0]


def test_w_sweep(report, benchmark):
    db = build_empdept(employees=2000, departments=50, jobs=5, seed=42)

    queries = {
        "fig1 3-way join": FIG1_QUERY,
        "selective select": "SELECT NAME FROM EMP WHERE DNO = 3",
        "group by": "SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO",
    }

    def plan_all():
        plans = {}
        for w in W_VALUES:
            db.w = w
            for label, sql in queries.items():
                plans[(w, label)] = db.plan(sql)
        return plans

    plans = benchmark(plan_all)
    db.w = 1 / 30  # restore

    report.line("A1 — weighting factor W sweep")
    rows = []
    for label in queries:
        for w in W_VALUES:
            planned = plans[(w, label)]
            rows.append(
                [
                    label,
                    f"{w:.3f}",
                    planned.estimated_cost.pages,
                    planned.estimated_cost.rsi,
                    plan_summary(planned.root)[:70],
                ]
            )
    report.table(
        ["query", "W", "pages", "RSI", "plan"],
        rows,
        widths=[18, 8, 10, 12, 72],
    )

    # Predicted page component never *increases* as RSI calls get cheaper:
    # at W=0 the optimizer minimizes pages alone.
    for label in queries:
        pages_at_zero = plans[(0.0, label)].estimated_cost.pages
        for w in W_VALUES:
            assert pages_at_zero <= plans[(w, label)].estimated_cost.pages + 1e-9
    # The sweep produces at least two distinct plans somewhere.
    distinct = {
        (label, plan_summary(planned.root))
        for (w, label), planned in plans.items()
    }
    assert len(distinct) > len(queries)
