"""Greedy join ordering: smallest estimated intermediate result first.

A common pre-Selinger (and post-Selinger shortcut) strategy: start from the
relation with the fewest estimated qualifying tuples, then repeatedly join
the connected relation minimizing the estimated size of the next composite.
Each step uses the cheaper of nested loops (best inner path) and
sort-both-sides merge.  No interesting-order bookkeeping, no backtracking.
"""

from __future__ import annotations

from ..catalog.catalog import Catalog
from ..optimizer.bound import BoundQueryBlock
from ..optimizer.plan import PlanNode
from ..optimizer.planner import Optimizer, PlannedStatement
from ..optimizer.predicates import to_cnf_factors
from .common import LeftDeepBuilder


class GreedyPlanner:
    """Greedy smallest-result-first planner."""

    def __init__(self, optimizer: Optimizer, catalog: Catalog):
        self._optimizer = optimizer
        self._catalog = catalog

    def plan_block(self, block: BoundQueryBlock) -> PlannedStatement:
        """Plan one block greedily: smallest estimated intermediate first."""
        factors = to_cnf_factors(block.where, block)
        builder = LeftDeepBuilder(
            block,
            factors,
            self._catalog,
            self._optimizer.estimator,
            self._optimizer.cost_model,
        )
        cost_model = self._optimizer.cost_model
        aliases = list(block.aliases)
        start = min(
            aliases, key=lambda alias: builder.subset_rows(frozenset({alias}))
        )
        plan: PlanNode = builder.cheapest_path(start).node
        built = frozenset({start})
        remaining = [alias for alias in aliases if alias != start]
        while remaining:
            connected = [
                alias
                for alias in remaining
                if builder.connecting_factors(built, alias)
            ] or remaining
            alias = min(
                connected,
                key=lambda a: builder.subset_rows(built | {a}),
            )
            options: list[PlanNode] = [builder.nested_loop(plan, built, alias)]
            for merge_factor in builder.equijoin_factors(built, alias):
                options.append(
                    builder.merge_with_sorts(plan, built, alias, merge_factor)
                )
            plan = min(options, key=lambda node: cost_model.total(node.cost))
            built = built | {alias}
            remaining.remove(alias)
        return self._optimizer.wrap_plan(block, factors, plan)
