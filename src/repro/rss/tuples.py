"""Byte-level tuple serialization.

A stored tuple is a contiguous byte record inside a slotted page:

====================  =====================================================
bytes                 meaning
====================  =====================================================
``u16``               relation id (segments interleave relations, so every
                      record is tagged with the relation it belongs to)
``ceil(ncols/8)``     null bitmap, bit *i* set when column *i* is NULL
per column            8-byte big-endian signed int / IEEE double, or a
                      2-byte length followed by UTF-8 bytes for VARCHAR
====================  =====================================================

NULL columns occupy no payload bytes beyond their bitmap bit.
"""

from __future__ import annotations

import struct

from ..datatypes import DataType, TypeKind
from ..errors import StorageError

_U16 = struct.Struct(">H")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


def encode_tuple(relation_id: int, values: tuple, datatypes: list[DataType]) -> bytes:
    """Serialize ``values`` (already validated) into a page record."""
    if len(values) != len(datatypes):
        raise StorageError(
            f"tuple has {len(values)} values but schema has {len(datatypes)}"
        )
    bitmap_size = (len(datatypes) + 7) // 8
    bitmap = bytearray(bitmap_size)
    parts: list[bytes] = []
    for position, (value, datatype) in enumerate(zip(values, datatypes)):
        if value is None:
            bitmap[position // 8] |= 1 << (position % 8)
            continue
        if datatype.kind is TypeKind.INTEGER:
            parts.append(_I64.pack(value))
        elif datatype.kind is TypeKind.FLOAT:
            parts.append(_F64.pack(value))
        else:
            raw = value.encode("utf-8")
            parts.append(_U16.pack(len(raw)))
            parts.append(raw)
    return _U16.pack(relation_id) + bytes(bitmap) + b"".join(parts)


def decode_tuple(record: bytes, datatypes: list[DataType]) -> tuple:
    """Deserialize a page record produced by :func:`encode_tuple`.

    The caller is expected to have matched the relation id already (use
    :func:`record_relation_id` for that); this returns only column values.
    """
    bitmap_size = (len(datatypes) + 7) // 8
    offset = 2 + bitmap_size
    bitmap = record[2 : 2 + bitmap_size]
    values: list[object] = []
    for position, datatype in enumerate(datatypes):
        if bitmap[position // 8] & (1 << (position % 8)):
            values.append(None)
            continue
        if datatype.kind is TypeKind.INTEGER:
            values.append(_I64.unpack_from(record, offset)[0])
            offset += 8
        elif datatype.kind is TypeKind.FLOAT:
            values.append(_F64.unpack_from(record, offset)[0])
            offset += 8
        else:
            (length,) = _U16.unpack_from(record, offset)
            offset += 2
            values.append(record[offset : offset + length].decode("utf-8"))
            offset += length
    return tuple(values)


class DecodePlan:
    """A precompiled decoder for one relation's schema.

    :func:`decode_tuple` re-derives the bitmap size, base offset, and
    per-column type dispatch for every record; a scan decodes thousands of
    records against one schema, so this plan hoists all of that out of the
    per-record path:

    - schemas with no VARCHAR column have fixed payload offsets, so a
      NULL-free record decodes with a single precompiled
      :class:`struct.Struct` unpack;
    - otherwise a precomputed per-column kind list drives a loop with no
      type-dispatch branching beyond one integer compare.

    Output is byte-for-byte equivalent to :func:`decode_tuple` (gated by
    ``tests/test_decode_plan.py``).
    """

    __slots__ = ("datatypes", "bitmap_size", "base_offset", "_kinds", "_no_null", "_fixed")

    #: per-column kind codes used by the decode loop
    _INT, _FLOAT, _STR = 0, 1, 2

    def __init__(self, datatypes: list[DataType]):
        self.datatypes = list(datatypes)
        self.bitmap_size = (len(self.datatypes) + 7) // 8
        self.base_offset = 2 + self.bitmap_size
        self._no_null = bytes(self.bitmap_size)
        kinds: list[int] = []
        for datatype in self.datatypes:
            if datatype.kind is TypeKind.INTEGER:
                kinds.append(self._INT)
            elif datatype.kind is TypeKind.FLOAT:
                kinds.append(self._FLOAT)
            else:
                kinds.append(self._STR)
        self._kinds = tuple(kinds)
        self._fixed: struct.Struct | None = None
        if self._STR not in self._kinds:
            fmt = ">" + "".join("q" if k == self._INT else "d" for k in self._kinds)
            self._fixed = struct.Struct(fmt)

    def decode(self, record: bytes) -> tuple:
        """Deserialize one record; equivalent to :func:`decode_tuple`."""
        base = self.base_offset
        bitmap = record[2:base]
        if bitmap == self._no_null:
            if self._fixed is not None:
                return self._fixed.unpack_from(record, base)
            values: list[object] = []
            offset = base
            for kind in self._kinds:
                if kind == self._INT:
                    values.append(_I64.unpack_from(record, offset)[0])
                    offset += 8
                elif kind == self._FLOAT:
                    values.append(_F64.unpack_from(record, offset)[0])
                    offset += 8
                else:
                    (length,) = _U16.unpack_from(record, offset)
                    offset += 2
                    values.append(record[offset : offset + length].decode("utf-8"))
                    offset += length
            return tuple(values)
        values = []
        offset = base
        for position, kind in enumerate(self._kinds):
            if bitmap[position // 8] & (1 << (position % 8)):
                values.append(None)
            elif kind == self._INT:
                values.append(_I64.unpack_from(record, offset)[0])
                offset += 8
            elif kind == self._FLOAT:
                values.append(_F64.unpack_from(record, offset)[0])
                offset += 8
            else:
                (length,) = _U16.unpack_from(record, offset)
                offset += 2
                values.append(record[offset : offset + length].decode("utf-8"))
                offset += length
        return tuple(values)


def record_relation_id(record: bytes) -> int:
    """The relation id tag at the front of a stored record."""
    return _U16.unpack_from(record, 0)[0]


def max_record_size(datatypes: list[DataType]) -> int:
    """Worst-case record size for a schema; used to reject impossible tuples."""
    bitmap_size = (len(datatypes) + 7) // 8
    return 2 + bitmap_size + sum(datatype.max_encoded_size() for datatype in datatypes)
