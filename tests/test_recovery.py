"""Serialization roundtrips and whole-database crash recovery."""

import pytest

from repro.analysis.storage_check import logical_dump, verify_storage
from repro.database import Database
from repro.errors import RecoveryError
from repro.rss.btree import _InternalNode, _LeafNode, orderable_key
from repro.rss.page import PAGE_SIZE, Page, TupleId
from repro.rss.recovery import (
    IndexMeta,
    StoreMeta,
    deserialize_meta,
    deserialize_page,
    serialize_meta,
    serialize_page,
)


class TestPageRoundtrips:
    def test_data_page(self):
        page = Page(7)
        page.insert(b"hello world")
        page.insert(b"second record")
        payload = serialize_page(page)
        clone = deserialize_page(7, payload)
        assert isinstance(clone, Page)
        assert clone.page_id == 7
        assert bytes(clone.data) == bytes(page.data)

    def test_leaf_node(self):
        leaf = _LeafNode()
        leaf.page_id = 9
        leaf.next_page_id = 12
        for number in (3, 1, 2):
            key = (number,)
            leaf.entries.append((orderable_key(key), key, TupleId(5, number)))
        clone = deserialize_page(9, serialize_page(leaf))
        assert isinstance(clone, _LeafNode)
        assert clone.next_page_id == 12
        assert [entry[1] for entry in clone.entries] == [
            entry[1] for entry in leaf.entries
        ]
        assert [entry[2] for entry in clone.entries] == [
            entry[2] for entry in leaf.entries
        ]
        # the orderable wrappers are rebuilt, not pickled
        assert [entry[0] for entry in clone.entries] == [
            entry[0] for entry in leaf.entries
        ]

    def test_internal_node(self):
        node = _InternalNode()
        node.page_id = 4
        node.keys = [orderable_key((10,)), orderable_key((20,))]
        node.children = [1, 2, 3]
        clone = deserialize_page(4, serialize_page(node))
        assert isinstance(clone, _InternalNode)
        assert clone.keys == node.keys
        assert clone.children == node.children

    def test_meta(self):
        meta = StoreMeta(
            catalog=None,
            segments=[("EMP", [1, 2, 3])],
            indexes=[IndexMeta("EMPNO", 4, 5, 42, key_types=[])],
        )
        clone = deserialize_meta(serialize_meta(meta))
        assert clone.segments == [("EMP", [1, 2, 3])]
        assert clone.indexes[0].name == "EMPNO"
        assert clone.indexes[0].entry_count == 42

    def test_bad_payloads_refused(self):
        with pytest.raises(RecoveryError, match="tag"):
            deserialize_page(1, b"Zgarbage")
        with pytest.raises(RecoveryError, match="bytes"):
            deserialize_page(1, b"P" + b"\0" * (PAGE_SIZE - 1))
        with pytest.raises(RecoveryError):
            deserialize_meta(b"P" + b"\0" * PAGE_SIZE)
        with pytest.raises(RecoveryError):
            serialize_page(object())


@pytest.fixture
def populated_path(tmp_path):
    """A closed durable database with tables, indexes and statistics."""
    path = tmp_path / "db.pages"
    db = Database(path=str(path))
    db.execute("CREATE TABLE EMP (EMPNO INTEGER, NAME VARCHAR(20), DEPT INTEGER)")
    db.execute("CREATE UNIQUE INDEX EMPNO_IDX ON EMP (EMPNO)")
    db.execute("CREATE INDEX DEPT_IDX ON EMP (DEPT)")
    for i in range(30):
        db.execute(f"INSERT INTO EMP VALUES ({i}, 'EMP{i}', {i % 4})")
    db.execute("DELETE FROM EMP WHERE EMPNO = 13")
    db.execute("UPDATE EMP SET DEPT = 9 WHERE EMPNO < 3")
    db.execute("UPDATE STATISTICS")
    dump = logical_dump(db)
    db.close()
    return path, dump


class TestDatabaseReopen:
    def test_rows_catalog_and_indexes_survive(self, populated_path):
        path, dump = populated_path
        db = Database(path=str(path))
        assert logical_dump(db) == dump
        assert verify_storage(db) == []
        # catalog came back: name resolution and semantic checks work
        table = db.catalog.table("EMP")
        assert [column.name for column in table.columns] == [
            "EMPNO",
            "NAME",
            "DEPT",
        ]
        # indexes came back as live B-trees, usable by the optimizer
        assert db.execute("SELECT NAME FROM EMP WHERE EMPNO = 7").rows == [
            ("EMP7",)
        ]
        assert db.execute(
            "SELECT COUNT(*) FROM EMP WHERE DEPT = 9"
        ).scalar() == 3
        db.close()

    def test_statistics_survive(self, populated_path):
        path, __ = populated_path
        db = Database(path=str(path))
        stats = db.catalog.relation_stats("EMP")
        assert stats is not None
        assert stats.ncard == 29
        db.close()

    def test_writes_after_reopen_are_durable(self, populated_path):
        path, __ = populated_path
        db = Database(path=str(path))
        db.execute("INSERT INTO EMP VALUES (999, 'LATE', 1)")
        dump = logical_dump(db)
        db.close()
        again = Database(path=str(path))
        assert logical_dump(again) == dump
        assert again.execute(
            "SELECT NAME FROM EMP WHERE EMPNO = 999"
        ).rows == [("LATE",)]
        again.close()

    def test_reopen_is_idempotent(self, populated_path):
        path, dump = populated_path
        for __ in range(3):
            db = Database(path=str(path))
            assert logical_dump(db) == dump
            db.close()

    def test_empty_database_roundtrip(self, tmp_path):
        path = tmp_path / "db.pages"
        Database(path=str(path)).close()
        db = Database(path=str(path))
        db.execute("CREATE TABLE T (A INTEGER)")
        db.close()
        again = Database(path=str(path))
        assert again.catalog.has_table("T")
        again.close()


class TestGroupCommitCrashRecovery:
    """A crash mid-group-commit, taken while sessions were active, must
    restore to a state containing the whole batch or none of it."""

    def _crash_batch(self, tmp_path, point):
        import threading
        import time

        from repro.errors import SimulatedCrash
        from repro.rss.disk import DiskManager
        from repro.rss.faults import FaultPlan, get_injector

        db = Database(path=str(tmp_path / "gc.pages"))
        db.execute("CREATE TABLE G (A INTEGER, B INTEGER)")
        db.execute("CREATE INDEX GA ON G (A)")
        db.execute("INSERT INTO G VALUES (1, 10), (2, 20)")
        before = logical_dump(db)
        reader = db.session("active-reader")
        assert sorted(reader.execute("SELECT A FROM G").rows) == [(1,), (2,)]

        # Hold the commit lock so three writers batch into one flip, then
        # crash that flip at the requested point.
        coordinator = db._coordinator
        assert coordinator._commit_lock.try_acquire()
        outcomes = [None] * 3

        def submit(i):
            session = db.session(f"gc-writer-{i}")
            try:
                outcomes[i] = session.execute(
                    f"INSERT INTO G VALUES ({100 + i}, {i})"
                )
            except Exception as error:  # noqa: BLE001 — outcome under test
                outcomes[i] = error
            finally:
                session.close()

        threads = [
            threading.Thread(target=submit, args=(i,), daemon=True)
            for i in range(3)
        ]
        get_injector().arm(FaultPlan(point, 1, "crash"))
        try:
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with coordinator._queue_lock:
                    if len(coordinator._queue) == 3:
                        break
                time.sleep(0.002)
        finally:
            coordinator._commit_lock.release()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        get_injector().disarm()

        # every participant learned the crash outcome — none hung, none
        # was told the statement committed
        assert all(
            isinstance(outcome, SimulatedCrash) for outcome in outcomes
        ), outcomes
        # the active reader still serves consistent pre-crash data
        assert sorted(reader.execute("SELECT A FROM G").rows) == [(1,), (2,)]
        reader.close()

        restored = DiskManager.restore(
            outcomes[0].snapshot, tmp_path / "gc-recovered.pages"
        )
        db.close()
        return before, restored

    @pytest.mark.parametrize(
        "point", ["group-commit.before-flip", "group-commit.after-fsync"]
    )
    def test_crash_restores_all_or_nothing(self, tmp_path, point):
        before, restored = self._crash_batch(tmp_path, point)
        with Database(path=str(restored)) as survivor:
            # storage verifies clean and the logical dump diff is empty:
            # the un-flipped batch left no trace
            assert verify_storage(survivor) == []
            assert logical_dump(survivor) == before
            # the recovered database accepts the batch again in full
            for i in range(3):
                survivor.execute(f"INSERT INTO G VALUES ({100 + i}, {i})")
            assert (
                survivor.execute("SELECT A FROM G WHERE A >= 100").affected_rows
                == 3
            )
