"""Parallel execution ≡ fused ≡ interpreter, at every worker count.

The parallel engine (``engine/parallel.py``) partitions segment scans into
page ranges, runs the fused per-batch drivers on a worker pool, and
repartitions nested-loop probes through a hash exchange.  Parallelism must
be invisible: these tests run the same queries through
``exec_mode="parallel"`` at 1, 2, and 4 workers against the fused and
interpreted engines over physically identical databases and require
*exactly ordered* identical rows, identical cost counters (page fetches,
RSI calls, *and* buffer hits — the driving thread replays the serial LRU
trace), and working DML.  A hypothesis predicate sweep and a 12-point
fault-injection matrix ride on top, plus the mode/worker plumbing:
unknown ``REPRO_EXEC`` values and bad worker counts must fail loudly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import Database
from repro.engine.executor import (
    VALID_EXEC_MODES,
    resolve_exec_settings,
)
from repro.workloads import build_empdept

from tests.test_compiled_eval import (
    QUERY_CORPUS,
    _company,
    _predicates,
    _run,
)
from tests.test_faults import (
    build_db,
    get_injector,
    registered_points,
    run_workload_under_fault,
)
from tests.test_fused_exec import ORDERED_QUERIES

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def company_matrix() -> dict[object, Database]:
    """Physically identical databases: fused, interp, parallel x workers."""
    databases: dict[object, Database] = {
        "fused": _company("fused"),
        "interp": _company("interp"),
    }
    for count in WORKER_COUNTS:
        db = _company("parallel")
        db.workers = count
        databases[count] = db
    return databases


@pytest.fixture(scope="module")
def empdept_matrix() -> dict[object, Database]:
    databases: dict[object, Database] = {
        "fused": build_empdept(employees=300, departments=12, seed=3),
        "interp": build_empdept(employees=300, departments=12, seed=3),
    }
    databases["interp"].exec_mode = "interp"
    for count in WORKER_COUNTS:
        db = build_empdept(employees=300, departments=12, seed=3)
        db.exec_mode = "parallel"
        db.workers = count
        databases[count] = db
    return databases


def _cold_run(db: Database, sql: str):
    db.storage.cold_cache()
    return _run(db, sql)


@pytest.mark.parametrize("sql", QUERY_CORPUS)
def test_parallel_agrees_exactly_on_corpus(company_matrix, sql):
    """Row-for-row, in order, at every worker count — the gather must
    reproduce the serial sequence and the serial fetch/hit trace."""
    rows = {}
    deltas = {}
    for key, db in company_matrix.items():
        rows[key], deltas[key] = _cold_run(db, sql)
    for count in WORKER_COUNTS:
        assert rows[count] == rows["fused"] == rows["interp"]
        assert deltas[count] == deltas["fused"] == deltas["interp"]


@pytest.mark.parametrize("sql", ORDERED_QUERIES)
def test_parallel_preserves_declared_orders(empdept_matrix, sql):
    rows = {}
    deltas = {}
    for key, db in empdept_matrix.items():
        rows[key], deltas[key] = _cold_run(db, sql)
    for count in WORKER_COUNTS:
        assert rows[count] == rows["fused"] == rows["interp"]
        assert deltas[count] == deltas["fused"] == deltas["interp"]


def test_parallel_star_join_uses_the_hash_exchange(empdept_matrix):
    """A segment-scan inner with an equality probe goes through the hash
    exchange; the counters still replay the serial nested-loop trace."""
    sql = (
        "SELECT NAME, DNAME FROM EMP, DEPT "
        "WHERE EMP.DNO = DEPT.DNO AND SAL > 300"
    )
    rows = {}
    deltas = {}
    for key, db in empdept_matrix.items():
        rows[key], deltas[key] = _cold_run(db, sql)
    assert rows[4] == rows["fused"]
    assert deltas[4] == deltas["fused"]
    assert rows[4], "the star probe query must return rows to mean anything"


# ---------------------------------------------------------------------------
# mode and worker plumbing: loud failures, not silent defaults
# ---------------------------------------------------------------------------


def test_unknown_exec_mode_lists_valid_modes(monkeypatch):
    monkeypatch.delenv("REPRO_EXEC", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    with pytest.raises(ValueError) as caught:
        resolve_exec_settings("vectorized")
    message = str(caught.value)
    assert "vectorized" in message
    for mode in VALID_EXEC_MODES:
        assert mode in message


def test_unknown_exec_mode_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC", "turbo")
    with pytest.raises(ValueError, match="valid modes"):
        Database().executor()


def test_parallel_worker_suffix_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_EXEC", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_exec_settings("parallel:3") == ("parallel", 3)
    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert resolve_exec_settings("parallel") == ("parallel", 5)
    # an explicit argument beats the environment
    assert resolve_exec_settings("parallel", workers=2) == ("parallel", 2)
    # non-parallel modes run single-worker by default
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_exec_settings("fused") == ("fused", 1)


@pytest.mark.parametrize(
    "mode,env",
    [
        ("parallel:0", None),
        ("parallel:x", None),
        ("fused:2", None),
        ("parallel", "0"),
        ("parallel", "many"),
    ],
)
def test_bad_worker_counts_fail_loudly(monkeypatch, mode, env):
    if env is None:
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
    else:
        monkeypatch.setenv("REPRO_WORKERS", env)
    with pytest.raises(ValueError):
        resolve_exec_settings(mode)


def test_database_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        Database(exec_mode="parallel", workers=0)


def test_dml_executes_under_parallel_mode():
    """UPDATE/DELETE target rows are collected by parallel scans and fully
    materialized before any page mutates."""
    db = Database(exec_mode="parallel", workers=2)
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
    for i in range(20):
        db.execute(f"INSERT INTO T VALUES ({i}, {i * 10})")
    db.execute("UPDATE STATISTICS")
    db.execute("UPDATE T SET B = -1 WHERE A >= 10")
    assert db.execute("SELECT COUNT(*) FROM T WHERE B = -1").scalar() == 10
    db.execute("DELETE FROM T WHERE A < 5")
    assert db.execute("SELECT COUNT(*) FROM T").scalar() == 15


# ---------------------------------------------------------------------------
# hypothesis sweep: parallel vs fused over NULL-laden data, order-exact
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_matrix() -> dict[object, Database]:
    from repro.workloads.empdept import load_rows

    databases: dict[object, Database] = {}
    for key in ("fused", 2):
        db = Database(
            exec_mode="fused" if key == "fused" else "parallel",
            workers=None if key == "fused" else key,
        )
        db.execute("CREATE TABLE T (A INTEGER, B INTEGER, S VARCHAR(4))")
        rows = []
        for a in (None, -2, 0, 1, 3, 7):
            for b, s in ((None, "xy"), (2, None), (5, "yx"), (8, "xxxx")):
                rows.append((a, b, s))
        load_rows(db, "T", rows)
        db.execute("UPDATE STATISTICS")
        databases[key] = db
    return databases


@settings(max_examples=60, deadline=None)
@given(predicate=_predicates())
def test_random_predicates_parallel_order_exact(sweep_matrix, predicate):
    sql = f"SELECT A, B, S FROM T WHERE {predicate}"
    rows = {}
    deltas = {}
    for key, db in sweep_matrix.items():
        rows[key], deltas[key] = _run(db, sql)
    assert rows[2] == rows["fused"]
    assert deltas[2] == deltas["fused"]


# ---------------------------------------------------------------------------
# fault matrix under REPRO_EXEC=parallel: atomicity is worker-count blind
# ---------------------------------------------------------------------------

#: All 12 registered fault points, hit once, alternating error/crash so
#: both recovery paths run with parallel scans collecting the target rows.
PARALLEL_FAULT_MATRIX = [
    (point, "error" if index % 2 == 0 else "crash")
    for index, point in enumerate(sorted(registered_points()))
]


@pytest.mark.parametrize(
    "point,action",
    PARALLEL_FAULT_MATRIX,
    ids=[f"{p}:{a}" for p, a in PARALLEL_FAULT_MATRIX],
)
def test_fault_matrix_under_parallel(tmp_path, monkeypatch, point, action):
    from repro.analysis.storage_check import logical_dump, verify_storage
    from repro.errors import SimulatedCrash
    from repro.rss.disk import DiskManager
    from repro.rss.faults import FaultPlan

    monkeypatch.setenv("REPRO_EXEC", "parallel")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    db = build_db(tmp_path / "db.pages")
    plan = FaultPlan(point, hit=1, action=action)
    mirror, error, failed_at, fired = run_workload_under_fault(db, plan)
    get_injector().disarm()

    assert fired, f"{plan!r} never fired under parallel execution"
    assert error is not None

    if action == "error":
        assert not isinstance(error, SimulatedCrash)
        assert logical_dump(db) == mirror
        assert verify_storage(db) == []
        db.close()
    else:
        assert isinstance(error, SimulatedCrash)
        assert error.snapshot is not None
        db.close()
        restored = DiskManager.restore(
            error.snapshot, tmp_path / "recovered.pages"
        )
        survivor = Database(path=str(restored))
        assert logical_dump(survivor) == mirror
        assert verify_storage(survivor) == []
        survivor.close()
