"""The paper's worked example (Figures 1-6), end to end.

Builds the EMP / DEPT / JOB database of Figure 1, prints the single-relation
access paths (Figure 2), the dynamic-programming search tree after each pass
(Figures 3-6), the chosen plan, and finally executes it and compares the
predicted cost against the measured page fetches and RSI calls.

Run with::

    python examples/join_example.py
"""

from repro.optimizer.binder import Binder
from repro.optimizer.explain import (
    render_search_tree,
    render_single_relation_paths,
)
from repro.optimizer.plan import render_plan
from repro.sql import parse_statement
from repro.workloads import FIG1_QUERY, build_empdept


def main() -> None:
    db = build_empdept(employees=500, departments=20, jobs=5, seed=42)
    print("Figure 1 query:")
    print(" ", FIG1_QUERY)
    print()

    optimizer = db.optimizer()
    block = Binder(db.catalog).bind(parse_statement(FIG1_QUERY))

    # Figure 2: access paths for single relations.
    search, orders, factors = optimizer.run_join_search(block)
    print(
        render_single_relation_paths(
            block, factors, db.catalog, optimizer.estimator,
            optimizer.cost_model, orders,
        )
    )
    print()

    # Figures 3-6: the search tree, one section per relation-set size.
    print(render_search_tree(search, optimizer.cost_model))
    print()

    # The chosen plan.
    planned = db.plan(FIG1_QUERY)
    print("Chosen plan:")
    print(render_plan(planned.root, w=planned.w))
    print()
    print(
        f"Predicted: {planned.estimated_cost.pages:.1f} page fetches + "
        f"W x {planned.estimated_cost.rsi:.0f} RSI calls "
        f"= {planned.estimated_total():.2f} (W = {planned.w:.4f})"
    )

    # Execute cold and compare.
    db.cold_cache()
    result = db.executor().execute(planned)
    counters = db.counters
    measured_total = counters.page_fetches + planned.w * counters.rsi_calls
    print(
        f"Measured:  {counters.page_fetches} page fetches + "
        f"W x {counters.rsi_calls} RSI calls = {measured_total:.2f}"
    )
    print(f"Result: {len(result.rows)} Denver clerks; first three:")
    for row in result.rows[:3]:
        print("   ", row)


if __name__ == "__main__":
    main()
