"""Shared external-sort arithmetic.

Both the optimizer's cost model and the engine's external sorter need the
same answers to "how many rows fit in the sort workspace?" and "how many
merge passes will this input need?", so the formulas live here, neutral of
either package.
"""

from __future__ import annotations

import math

from .rss.page import PAGE_SIZE


def temp_rows_per_page(row_bytes: int) -> int:
    """Rows of ``row_bytes`` per temporary-list page (slot overhead incl.)."""
    return max(1, (PAGE_SIZE - 8) // max(1, row_bytes + 4))


def workspace_rows(buffer_pages: int, row_bytes: int) -> int:
    """Rows the in-memory sort workspace holds (a buffer's worth of pages)."""
    return max(2, buffer_pages * temp_rows_per_page(row_bytes))


def merge_fan_in(buffer_pages: int) -> int:
    """Runs merged at a time: one buffer page per input run, one for output."""
    return max(2, buffer_pages - 1)


def merge_passes(rows: float, buffer_pages: int, row_bytes: int) -> int:
    """Merge passes after run generation (0 when one run suffices)."""
    if rows <= 0:
        return 0
    runs = math.ceil(rows / workspace_rows(buffer_pages, row_bytes))
    if runs <= 1:
        return 0
    fan_in = merge_fan_in(buffer_pages)
    return max(1, math.ceil(math.log(runs) / math.log(fan_in)))
