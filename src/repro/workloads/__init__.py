"""Workloads: schemas, datasets, and query generators for the experiments.

- :mod:`repro.workloads.empdept` — the paper's own EMP / DEPT / JOB example
  (Figure 1), parameterized by size.
- :mod:`repro.workloads.generator` — synthetic schemas, data distributions,
  and randomized join queries for the plan-quality and scaling experiments.
"""

from .empdept import FIG1_QUERY, build_empdept, load_rows
from .generator import (
    ColumnSpec,
    IndexSpec,
    TableSpec,
    build_database,
    chain_join_query,
    clique_join_query,
    random_chain_spec,
    random_clique_spec,
    random_select_query,
    random_star_spec,
    star_join_query,
)

__all__ = [
    "ColumnSpec",
    "FIG1_QUERY",
    "IndexSpec",
    "TableSpec",
    "build_database",
    "build_empdept",
    "chain_join_query",
    "clique_join_query",
    "load_rows",
    "random_chain_spec",
    "random_clique_spec",
    "random_select_query",
    "random_star_spec",
    "star_join_query",
]
