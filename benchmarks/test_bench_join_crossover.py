"""E11 — §5: when does merging scans beat nested loops?

"The reason that merging scans is sometimes better than nested loops is
that the cost of the inner scan may be much less" — after sorting, the
inner is clustered on the join column and is never rescanned.

We sweep the outer cardinality of an equi-join whose inner has no useful
index.  Nested loops must rescan the inner segment per outer tuple (cost
grows linearly with the outer); sort-merge pays a one-time sort.  The bench
locates the crossover in both predicted and measured cost and checks the
optimizer switches methods on the right side of it.
"""

from conftest import measure_cold, weighted
from repro import Database
from repro.baselines import LeftDeepBuilder
from repro.optimizer.binder import Binder
from repro.optimizer.plan import MergeJoinNode, NestedLoopJoinNode, walk_plan
from repro.optimizer.predicates import to_cnf_factors
from repro.sql import parse_statement
from repro.workloads import load_rows

OUTER_SIZES = [4, 16, 64, 256, 1024]
INNER_SIZE = 1200
DISTINCT = 40


def build_db(outer_rows: int) -> Database:
    """Both relations are padded so neither fits in the 8-page pool once the
    outer grows — the regime where the paper's NL-vs-merge crossover lives
    (a buffer-resident inner would make nested loops unbeatable)."""
    db = Database(buffer_pages=8)
    db.execute("CREATE TABLE OUTR (K INTEGER, V INTEGER, PAD VARCHAR(40))")
    db.execute("CREATE TABLE INNR (K INTEGER, W INTEGER, PAD VARCHAR(40))")
    load_rows(
        db,
        "OUTR",
        [((i * 7) % DISTINCT, i, "o" * 32) for i in range(outer_rows)],
    )
    load_rows(
        db,
        "INNR",
        [((i * 11) % DISTINCT, i, "x" * 32) for i in range(INNER_SIZE)],
    )
    db.execute("UPDATE STATISTICS")
    return db


SQL = "SELECT OUTR.V, INNR.W FROM OUTR, INNR WHERE OUTR.K = INNR.K"


def build_both_plans(db):
    optimizer = db.optimizer()
    block = Binder(db.catalog).bind(parse_statement(SQL))
    factors = to_cnf_factors(block.where, block)
    builder = LeftDeepBuilder(
        block, factors, db.catalog, optimizer.estimator, optimizer.cost_model
    )
    outer = builder.cheapest_path("OUTR").node
    built = frozenset({"OUTR"})
    nl = builder.nested_loop(outer, built, "INNR")
    merge = builder.merge_with_sorts(
        outer, built, "INNR", builder.equijoin_factors(built, "INNR")[0]
    )
    return (
        optimizer.wrap_plan(block, factors, nl),
        optimizer.wrap_plan(
            Binder(db.catalog).bind(parse_statement(SQL)),
            to_cnf_factors(block.where, block),
            merge,
        ),
        optimizer,
    )


def test_join_method_crossover(report, benchmark):
    rows = []
    chosen_methods = []
    for outer_rows in OUTER_SIZES:
        db = build_db(outer_rows)
        nl_planned, merge_planned, optimizer = build_both_plans(db)
        nl_measured, __ = measure_cold(db, nl_planned)
        merge_measured, __ = measure_cold(db, merge_planned)

        chosen = db.plan(SQL)
        if outer_rows == OUTER_SIZES[0]:
            benchmark.pedantic(lambda: db.plan(SQL), rounds=3, iterations=1)
        method = "?"
        for node in walk_plan(chosen.root):
            if isinstance(node, NestedLoopJoinNode):
                method = "nested-loop"
                break
            if isinstance(node, MergeJoinNode):
                method = "merge"
                break
        chosen_methods.append((outer_rows, method))
        rows.append(
            [
                outer_rows,
                nl_planned.estimated_total(),
                weighted(nl_measured, nl_planned.w),
                merge_planned.estimated_total(),
                weighted(merge_measured, merge_planned.w),
                method,
            ]
        )

    report.line("E11 — nested loops vs merging scans (inner without index)")
    report.line(f"inner: {INNER_SIZE} rows, {DISTINCT} distinct join values")
    report.table(
        [
            "outer rows",
            "NL pred",
            "NL meas",
            "merge pred",
            "merge meas",
            "chosen",
        ],
        rows,
        widths=[12, 12, 12, 12, 12, 14],
    )
    report.line()
    report.line(
        "NL cost grows with the outer cardinality; the sort-merge's one-time"
    )
    report.line("sort amortizes, creating the crossover the paper describes.")

    # Shape checks: NL wins for a tiny outer, merge for a large one.
    first, last = rows[0], rows[-1]
    assert first[2] <= first[4], "NL should measure cheaper on the tiny outer"
    assert last[4] <= last[2], "merge should measure cheaper on the large outer"
    # The optimizer switches methods somewhere in between.
    methods = [method for __, method in chosen_methods]
    assert methods[0] == "nested-loop"
    assert methods[-1] == "merge"
