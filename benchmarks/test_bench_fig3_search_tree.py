"""E5 — Figure 3: the search tree after the single-relation pass.

The surviving DP entries for each single relation: the cheapest solution
per interesting order plus the cheapest unordered solution.
"""

from repro.optimizer.binder import Binder
from repro.optimizer.explain import format_order, solutions_table
from repro.sql import parse_statement
from repro.workloads import FIG1_QUERY


def test_fig3_single_relation_tree(empdept, report, benchmark):
    optimizer = empdept.optimizer()

    def search():
        block = Binder(empdept.catalog).bind(parse_statement(FIG1_QUERY))
        return optimizer.run_join_search(block)[0]

    result = benchmark(search)

    rows = [
        [
            "{" + ",".join(entry["relations"]) + "}",
            format_order(entry["order"]),
            entry["cost"],
            entry["rows"],
            entry["plan"],
        ]
        for entry in solutions_table(result, optimizer.cost_model, size=1)
    ]
    report.line("E5 / Figure 3 — search tree, single relations")
    report.table(
        ["relations", "order", "cost", "rows", "plan"],
        rows,
        widths=[12, 14, 12, 12, 40],
    )
    # As in the figure: EMP keeps DNO-order, JOB-order, and unordered
    # solutions; DEPT and JOB keep at most two each.
    emp_entries = [row for row in rows if row[0] == "{EMP}"]
    assert len(emp_entries) == 3
    dept_entries = [row for row in rows if row[0] == "{DEPT}"]
    assert 1 <= len(dept_entries) <= 2
