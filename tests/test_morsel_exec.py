"""Morsel scheduling ≡ fused across backends, morsel sizes, and breakers.

The scheduler (``engine/scheduler.py``) decomposes eligible scans into
fixed-size page morsels pulled from a shared pool queue, optionally on a
forked process pool (``REPRO_BACKEND=process``).  Scheduling must be
invisible: every combination of backend × morsel size × worker count has
to reproduce the fused engine's rows *in order* and its exact cost
counters (page fetches, RSI calls, buffer hits).  On top of that ride
the two parallel breakers (partial aggregation, parallel sort runs),
pool lifecycle (``Database.close()`` leaves no ``repro-worker`` threads
or forked children), the full fault matrix and DML under the process
backend, and loud failures for bad knob values.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.engine.scheduler import (
    DEFAULT_MORSEL_PAGES,
    SerialBackend,
    get_backend,
    morsel_pages,
    morsel_ranges,
    partition_ranges,
    resolve_backend,
    resolve_schedule,
    scan_ranges,
    shutdown_backends,
)
from repro.workloads import build_empdept
from repro.workloads.empdept import load_rows

from tests.test_compiled_eval import _predicates, _run
from tests.test_faults import (
    build_db,
    get_injector,
    registered_points,
    run_workload_under_fault,
)

#: Queries spanning the morsel-scheduled shapes: bare/filtered scans,
#: direct projection, probe joins, aggregation, and enforced order.
MORSEL_QUERIES = (
    "SELECT ENO, NAME, SAL FROM EMP",
    "SELECT NAME, SAL FROM EMP WHERE SAL > 400 AND JOB = 2",
    "SELECT ENO, SAL * 12 FROM EMP WHERE SAL / 2 > 150",
    "SELECT ENO FROM EMP WHERE SAL BETWEEN 200 AND 800 AND DNO IN (1, 2, 3)",
    "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND SAL > 300",
    "SELECT COUNT(*), SUM(SAL), MIN(SAL), MAX(SAL) FROM EMP WHERE JOB = 2",
    "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO HAVING COUNT(*) > 2",
    "SELECT NAME, SAL FROM EMP WHERE DNO <= 12 ORDER BY SAL DESC, NAME",
)


def _empdept(mode: str, workers: int | None = None) -> Database:
    db = build_empdept(employees=300, departments=12, seed=3)
    db.exec_mode = mode
    db.workers = workers
    return db


@pytest.fixture(scope="module")
def fused_db() -> Database:
    return _empdept("fused")


@pytest.fixture(scope="module")
def parallel_db() -> Database:
    return _empdept("parallel", workers=4)


def _cold_run(db: Database, sql: str):
    db.storage.cold_cache()
    return _run(db, sql)


@pytest.mark.parametrize("backend", ("thread", "process"))
@pytest.mark.parametrize("pages", (1, 3, 7))
def test_morsel_sizes_and_backends_agree_with_fused(
    monkeypatch, fused_db, parallel_db, backend, pages
):
    """Any morsel size on either backend: rows, order, and counters are
    bit-identical to fused — the gather replays the serial trace."""
    monkeypatch.setenv("REPRO_MORSEL_PAGES", str(pages))
    parallel_db.backend = backend
    for sql in MORSEL_QUERIES:
        expected = _cold_run(fused_db, sql)
        assert _cold_run(parallel_db, sql) == expected, sql


def test_static_schedule_agrees_with_fused(monkeypatch, fused_db, parallel_db):
    """``REPRO_SCHEDULE=static`` (the bench baseline) is equally exact."""
    monkeypatch.setenv("REPRO_SCHEDULE", "static")
    parallel_db.backend = "thread"
    for sql in MORSEL_QUERIES:
        expected = _cold_run(fused_db, sql)
        assert _cold_run(parallel_db, sql) == expected, sql


# ---------------------------------------------------------------------------
# hypothesis sweep: random predicates x morsel sizes x workers x backends
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_pair() -> tuple[Database, Database]:
    databases = []
    for mode in ("fused", "parallel"):
        db = Database(exec_mode=mode)
        db.execute("CREATE TABLE T (A INTEGER, B INTEGER, S VARCHAR(4))")
        rows = []
        for a in (None, -2, 0, 1, 3, 7):
            for b, s in ((None, "xy"), (2, None), (5, "yx"), (8, "xxxx")):
                rows.append((a, b, s))
        load_rows(db, "T", rows)
        db.execute("UPDATE STATISTICS")
        databases.append(db)
    return databases[0], databases[1]


@settings(max_examples=50, deadline=None)
@given(
    predicate=_predicates(),
    pages=st.integers(min_value=1, max_value=9),
    workers=st.sampled_from((1, 2, 4)),
    backend=st.sampled_from(("thread", "process")),
)
def test_random_morsel_schedules_are_order_exact(
    sweep_pair, predicate, pages, workers, backend
):
    fused, parallel = sweep_pair
    parallel.workers = workers
    parallel.backend = backend
    sql = f"SELECT A, B, S FROM T WHERE {predicate}"
    saved = os.environ.get("REPRO_MORSEL_PAGES")
    os.environ["REPRO_MORSEL_PAGES"] = str(pages)
    try:
        assert _run(parallel, sql) == _run(fused, sql)
    finally:
        if saved is None:
            del os.environ["REPRO_MORSEL_PAGES"]
        else:
            os.environ["REPRO_MORSEL_PAGES"] = saved


# ---------------------------------------------------------------------------
# pool lifecycle: close() reclaims workers, atexit-safe registry
# ---------------------------------------------------------------------------


def _worker_threads() -> list[threading.Thread]:
    return [
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("repro-worker")
    ]


def test_close_leaves_no_worker_threads_alive():
    shutdown_backends()
    db = Database(exec_mode="parallel", workers=2)
    db.execute("CREATE TABLE T (A INTEGER)")
    for i in range(50):
        db.execute(f"INSERT INTO T VALUES ({i})")
    db.execute("UPDATE STATISTICS")
    assert db.execute("SELECT COUNT(*) FROM T WHERE A >= 10").scalar() == 40
    assert _worker_threads(), "the parallel statement must have used the pool"
    db.close()
    assert _worker_threads() == []


def test_close_reaps_process_pool_children():
    shutdown_backends()
    assert multiprocessing.active_children() == []
    db = Database(exec_mode="parallel", workers=2, backend="process")
    db.execute("CREATE TABLE T (A INTEGER)")
    for i in range(50):
        db.execute(f"INSERT INTO T VALUES ({i})")
    db.execute("UPDATE STATISTICS")
    assert db.execute("SELECT COUNT(*) FROM T WHERE A >= 10").scalar() == 40
    assert multiprocessing.active_children(), "no forked workers were used"
    db.close()
    assert multiprocessing.active_children() == []


def test_pools_recreate_after_close():
    """Closing one database must not wedge the next one's statements."""
    first = Database(exec_mode="parallel", workers=2)
    first.execute("CREATE TABLE T (A INTEGER)")
    first.execute("INSERT INTO T VALUES (1)")
    first.execute("UPDATE STATISTICS")
    first.execute("SELECT A FROM T")
    first.close()
    second = Database(exec_mode="parallel", workers=2)
    second.execute("CREATE TABLE T (A INTEGER)")
    for i in range(30):
        second.execute(f"INSERT INTO T VALUES ({i})")
    second.execute("UPDATE STATISTICS")
    assert second.execute("SELECT COUNT(*) FROM T").scalar() == 30
    second.close()


def test_backend_registry_reuses_pools():
    shutdown_backends()
    assert get_backend(2, "thread") is get_backend(2, "thread")
    assert get_backend(2, "thread") is not get_backend(4, "thread")
    assert get_backend(2, "thread") is not get_backend(2, "process")
    shutdown_backends()


def test_serial_backend_for_one_worker_any_kind():
    assert isinstance(get_backend(1, "thread"), SerialBackend)
    assert isinstance(get_backend(1, "process"), SerialBackend)
    assert isinstance(get_backend(0, "process"), SerialBackend)


# ---------------------------------------------------------------------------
# knob plumbing: loud failures, not silent defaults
# ---------------------------------------------------------------------------


def test_unknown_backend_lists_valid_backends(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    with pytest.raises(ValueError) as caught:
        resolve_backend("gpu")
    assert "gpu" in str(caught.value)
    assert "thread" in str(caught.value)
    assert "process" in str(caught.value)


def test_unknown_backend_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "ray")
    with pytest.raises(ValueError, match="valid backends"):
        Database()


def test_database_rejects_bad_backend():
    with pytest.raises(ValueError):
        Database(backend="cluster")


@pytest.mark.parametrize("text", ("0", "-3", "x", "2.5"))
def test_bad_morsel_sizes_fail_loudly(monkeypatch, text):
    monkeypatch.setenv("REPRO_MORSEL_PAGES", text)
    with pytest.raises(ValueError, match="REPRO_MORSEL_PAGES"):
        morsel_pages()


def test_morsel_pages_defaults_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_MORSEL_PAGES", raising=False)
    assert morsel_pages() == DEFAULT_MORSEL_PAGES


def test_unknown_schedule_fails_loudly(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE", "chaotic")
    with pytest.raises(ValueError, match="valid schedules"):
        resolve_schedule()


@pytest.mark.parametrize("count", (0, 1, 5, 17, 64))
@pytest.mark.parametrize("pages", (1, 3, 8))
def test_morsel_ranges_cover_every_page_once(count, pages):
    ranges = morsel_ranges(count, pages)
    covered = [page for lo, hi in ranges for page in range(lo, hi)]
    assert covered == list(range(count))
    assert all(hi - lo <= pages for lo, hi in ranges)


def test_scan_ranges_honours_the_schedule(monkeypatch):
    monkeypatch.delenv("REPRO_MORSEL_PAGES", raising=False)
    monkeypatch.setenv("REPRO_SCHEDULE", "static")
    assert scan_ranges(64, 4) == partition_ranges(64, 8)
    monkeypatch.setenv("REPRO_SCHEDULE", "morsel")
    assert scan_ranges(64, 4) == morsel_ranges(64, DEFAULT_MORSEL_PAGES)


# ---------------------------------------------------------------------------
# parallel partial aggregation vs the serial scan-aggregate fold
# ---------------------------------------------------------------------------

AGG_QUERIES = (
    "SELECT COUNT(*) FROM T",
    "SELECT COUNT(B), SUM(B), MIN(B), MAX(B), AVG(B) FROM T",
    "SELECT COUNT(*), SUM(B) FROM T WHERE A < 5",
    "SELECT COUNT(DISTINCT B), SUM(B) FROM T WHERE A >= 2",
    "SELECT MIN(B), MAX(B) FROM T WHERE A = 99",
)


@pytest.fixture(scope="module")
def agg_pair() -> tuple[Database, Database]:
    import random

    databases = []
    for mode in ("fused", "parallel"):
        rng = random.Random(11)
        db = Database(exec_mode=mode, workers=4)
        db.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
        rows = [
            (rng.randrange(8), None if rng.random() < 0.1 else rng.randrange(60))
            for __ in range(2000)
        ]
        load_rows(db, "T", rows)
        db.execute("UPDATE STATISTICS")
        databases.append(db)
    return databases[0], databases[1]


@pytest.mark.parametrize("backend", ("thread", "process"))
@pytest.mark.parametrize("workers", (2, 4))
@pytest.mark.parametrize("sql", AGG_QUERIES)
def test_partial_aggregation_agrees_with_serial(
    agg_pair, sql, workers, backend
):
    fused, parallel = agg_pair
    parallel.workers = workers
    parallel.backend = backend
    assert _cold_run(parallel, sql) == _cold_run(fused, sql)


def test_parallel_aggregate_driver_engages(agg_pair):
    """The differential above is vacuous unless the driver is eligible."""
    from repro.engine.executor import Runtime, _context_for
    from repro.engine.parallel import parallel_aggregate_driver
    from repro.optimizer.plan import AggregateNode, walk_plan

    __, parallel = agg_pair
    planned = parallel.plan("SELECT COUNT(*), SUM(B) FROM T WHERE A < 5")
    runtime = Runtime(
        parallel.storage, parallel.catalog, planned,
        exec_mode="parallel", workers=4,
    )
    ctx = _context_for(runtime, planned)
    node = next(
        node for node in walk_plan(planned.root)
        if isinstance(node, AggregateNode)
    )
    assert parallel_aggregate_driver(node, ctx) is not None


def test_empty_input_ungrouped_aggregates_yield_one_row(agg_pair):
    fused, parallel = agg_pair
    parallel.workers = 4
    parallel.backend = "thread"
    from repro.errors import SemanticError

    for db in (fused, parallel):
        try:
            db.catalog.table("E")
        except SemanticError:
            db.execute("CREATE TABLE E (A INTEGER, B INTEGER)")
            db.execute("UPDATE STATISTICS")
    sql = "SELECT COUNT(*), SUM(B), MIN(B) FROM E"
    expected = _cold_run(fused, sql)
    assert expected[0] == [(0, None, None)]
    assert _cold_run(parallel, sql) == expected


def test_agg_state_merge_matches_serial_fold():
    """Partial states merged across any split reproduce the serial fold."""
    from repro.engine.operators import _AggState
    from repro.engine.scheduler import AggCallSpec

    values = [3, None, 7, 3, -2, None, 11, 3, 0, 7]
    for name in ("COUNT", "SUM", "MIN", "MAX", "AVG"):
        for distinct in (False, True):
            for argument in (None, 0):
                if argument is None and (distinct or name != "COUNT"):
                    continue
                call = AggCallSpec(name, argument, distinct)
                serial = _AggState(call)
                for value in values:
                    serial.add(None if argument is None else value)
                for split in range(len(values) + 1):
                    left, right = _AggState(call), _AggState(call)
                    for value in values[:split]:
                        left.add(None if argument is None else value)
                    for value in values[split:]:
                        right.add(None if argument is None else value)
                    left.merge(right)
                    assert left.result() == serial.result(), (
                        name, distinct, argument, split,
                    )


def test_run_agg_morsel_emits_runs_in_first_occurrence_order():
    """The worker fold keeps streaming (adjacency) group semantics."""
    from repro.engine.scheduler import AggCallSpec, AggMorsel, run_agg_morsel

    db = Database()
    db.execute("CREATE TABLE G (K INTEGER, V INTEGER)")
    rows = [(k, k * 10 + i) for k in (1, 1, 2, 2, 2, 3, 1) for i in (0, 1)]
    load_rows(db, "G", rows)
    db.execute("UPDATE STATISTICS")
    table = db.catalog.table("G")
    snapshot = db.storage.scan_snapshot(table)
    morsel = AggMorsel(
        pages=snapshot.freeze_range(0, len(snapshot.page_ids)),
        relation_id=snapshot.relation_id,
        datatypes=tuple(column.datatype for column in table.columns),
        sargs=None,
        key_positions=(0,),
        arg_positions=(None, 1),
        calls=(
            AggCallSpec("COUNT", None, False),
            AggCallSpec("SUM", 1, False),
        ),
    )
    counters, page_count, runs = run_agg_morsel(morsel)
    assert page_count == len(snapshot.page_ids)
    # Streaming semantics: key 1 reappearing after 3 opens a new run.
    assert [key for key, __, ___, ____ in runs] == [(1,), (2,), (3,), (1,)]
    assert [states[0].result() for __, states, ___, ____ in runs] == [
        4, 6, 2, 2,
    ]
    assert counters.rsi_calls == len(rows)


# ---------------------------------------------------------------------------
# parallel sort runs vs the serial run sort
# ---------------------------------------------------------------------------


def test_parallel_run_sorter_matches_serial_incl_ties():
    """Per-worker sorted slices + k-way merge == one stable sort, with
    duplicate keys and NULLs; below the slice threshold it falls back."""
    import random

    from repro.engine.executor import Runtime, _context_for
    from repro.engine.external_sort import _sorted_run
    from repro.engine.parallel import parallel_run_sorter
    from repro.engine.rows import Row
    from repro.optimizer.plan import SortNode, walk_plan

    db = Database(exec_mode="parallel", workers=4)
    db.execute("CREATE TABLE S (A INTEGER, B INTEGER)")
    db.execute("INSERT INTO S VALUES (1, 2)")
    db.execute("UPDATE STATISTICS")
    planned = db.plan("SELECT A, B FROM S ORDER BY A, B DESC")
    keys = next(
        node for node in walk_plan(planned.root)
        if isinstance(node, SortNode)
    ).keys
    runtime = Runtime(
        db.storage, db.catalog, planned, exec_mode="parallel", workers=4
    )
    ctx = _context_for(runtime, planned)
    sorter = parallel_run_sorter(ctx, keys)

    rng = random.Random(5)
    for count in (40, 700, 2000):
        rows = [
            Row(values={"S": (
                rng.choice((None, 0, 1, 1, 2, 5)),
                rng.choice((None, 3, 3, 8)),
            )})
            for __ in range(count)
        ]
        assert sorter(list(rows)) == _sorted_run(rows, keys)
    db.close()


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_order_by_large_input_agrees_under_parallel_sort(backend):
    """End-to-end ORDER BY above the slice threshold: rows, order, and
    sort temp traffic (counters) identical to fused."""
    fused = build_empdept(employees=1500, departments=24, seed=7)
    parallel = build_empdept(employees=1500, departments=24, seed=7)
    parallel.exec_mode = "parallel"
    parallel.workers = 4
    parallel.backend = backend
    sql = "SELECT ENO, NAME, SAL FROM EMP ORDER BY SAL DESC, NAME"
    expected = _cold_run(fused, sql)
    assert len(expected[0]) == 1500
    assert _cold_run(parallel, sql) == expected
    fused.close()
    parallel.close()


# ---------------------------------------------------------------------------
# DML and the fault matrix under REPRO_BACKEND=process
# ---------------------------------------------------------------------------


def test_dml_executes_under_process_backend():
    db = Database(exec_mode="parallel", workers=2, backend="process")
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER)")
    for i in range(20):
        db.execute(f"INSERT INTO T VALUES ({i}, {i * 10})")
    db.execute("UPDATE STATISTICS")
    db.execute("UPDATE T SET B = -1 WHERE A >= 10")
    assert db.execute("SELECT COUNT(*) FROM T WHERE B = -1").scalar() == 10
    db.execute("DELETE FROM T WHERE A < 5")
    assert db.execute("SELECT COUNT(*) FROM T").scalar() == 15
    db.close()


#: Every registered fault point, hit once, alternating error/crash, with
#: parallel scans shipping morsels to forked workers while the driving
#: thread owns all storage mutation.
PROCESS_FAULT_MATRIX = [
    (point, "error" if index % 2 == 0 else "crash")
    for index, point in enumerate(sorted(registered_points()))
]


@pytest.mark.parametrize(
    "point,action",
    PROCESS_FAULT_MATRIX,
    ids=[f"{p}:{a}" for p, a in PROCESS_FAULT_MATRIX],
)
def test_fault_matrix_under_process_backend(tmp_path, monkeypatch, point, action):
    from repro.analysis.storage_check import logical_dump, verify_storage
    from repro.errors import SimulatedCrash
    from repro.rss.disk import DiskManager
    from repro.rss.faults import FaultPlan

    monkeypatch.setenv("REPRO_EXEC", "parallel")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_BACKEND", "process")
    db = build_db(tmp_path / "db.pages")
    plan = FaultPlan(point, hit=1, action=action)
    mirror, error, failed_at, fired = run_workload_under_fault(db, plan)
    get_injector().disarm()

    assert fired, f"{plan!r} never fired under the process backend"
    assert error is not None

    if action == "error":
        assert not isinstance(error, SimulatedCrash)
        assert logical_dump(db) == mirror
        assert verify_storage(db) == []
        db.close()
    else:
        assert isinstance(error, SimulatedCrash)
        assert error.snapshot is not None
        db.close()
        restored = DiskManager.restore(
            error.snapshot, tmp_path / "recovered.pages"
        )
        survivor = Database(path=str(restored))
        assert logical_dump(survivor) == mirror
        assert verify_storage(survivor) == []
        survivor.close()
